//! Packets and flits.

use crate::ids::{NodeId, PacketId};
use lumen_desim::Picos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet: the unit of traffic generation and latency measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identity.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Length in flits (≥ 1).
    pub size_flits: u32,
    /// Creation time (start of the latency measurement, per the paper:
    /// "from the creation of the first flit of the packet").
    pub created_at: Picos,
}

impl Packet {
    /// Creates a packet.
    ///
    /// # Panics
    ///
    /// Panics if `size_flits` is zero or `src == dst`.
    pub fn new(id: PacketId, src: NodeId, dst: NodeId, size_flits: u32, created_at: Picos) -> Self {
        assert!(size_flits >= 1, "packets need at least one flit");
        assert!(src != dst, "self-addressed packets are not routed");
        Packet {
            id,
            src,
            dst,
            size_flits,
            created_at,
        }
    }

    /// Breaks the packet into its flit sequence.
    pub fn into_flits(self) -> impl Iterator<Item = Flit> {
        let size = self.size_flits;
        (0..size).map(move |seq| {
            let kind = if size == 1 {
                FlitKind::HeadTail
            } else if seq == 0 {
                FlitKind::Head
            } else if seq == size - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            Flit {
                packet: self.id,
                kind,
                seq,
                src: self.src,
                dst: self.dst,
                size_flits: size,
                created_at: self.created_at,
                corrupted: false,
            }
        })
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}→{}, {} flits]",
            self.id, self.src, self.dst, self.size_flits
        )
    }
}

/// A flit's position within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases the wormhole path.
    Tail,
    /// A single-flit packet (head and tail at once).
    HeadTail,
}

impl FlitKind {
    /// Whether this flit opens a packet (needs route computation / VC
    /// allocation).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::HeadTail)
    }

    /// Whether this flit closes a packet (releases the output VC).
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::HeadTail)
    }
}

/// A flow-control unit: the fixed-size segment routers operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flit {
    /// Owning packet.
    pub packet: PacketId,
    /// Head/body/tail position.
    pub kind: FlitKind,
    /// Sequence number within the packet.
    pub seq: u32,
    /// Source node (carried for statistics).
    pub src: NodeId,
    /// Destination node (carried for routing).
    pub dst: NodeId,
    /// Packet length (carried for reassembly checks).
    pub size_flits: u32,
    /// Packet creation time (carried for latency measurement).
    pub created_at: Picos,
    /// Whether a link fault flipped bits in this flit. Corrupted flits
    /// travel the network normally (flow control cannot tell) and are
    /// detected end-to-end at the sink, which drops the whole packet.
    pub corrupted: bool,
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}({:?})", self.packet, self.seq, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(size: u32) -> Packet {
        Packet::new(PacketId(1), NodeId(0), NodeId(5), size, Picos::ZERO)
    }

    #[test]
    fn multi_flit_structure() {
        let flits: Vec<Flit> = pkt(4).into_flits().collect();
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert!(flits[0].kind.is_head() && !flits[0].kind.is_tail());
        assert!(flits[3].kind.is_tail() && !flits[3].kind.is_head());
        for (i, fl) in flits.iter().enumerate() {
            assert_eq!(fl.seq, i as u32);
            assert_eq!(fl.dst, NodeId(5));
            assert_eq!(fl.size_flits, 4);
        }
    }

    #[test]
    fn two_flit_packet_has_head_and_tail() {
        let flits: Vec<Flit> = pkt(2).into_flits().collect();
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn single_flit_packet_is_headtail() {
        let flits: Vec<Flit> = pkt(1).into_flits().collect();
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::HeadTail);
        assert!(flits[0].kind.is_head());
        assert!(flits[0].kind.is_tail());
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn self_send_rejected() {
        let _ = Packet::new(PacketId(1), NodeId(3), NodeId(3), 2, Picos::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn empty_packet_rejected() {
        let _ = Packet::new(PacketId(1), NodeId(0), NodeId(1), 0, Picos::ZERO);
    }
}
