//! Precomputed flat routing tables.
//!
//! PR 6's [`Topology`] trait made arbitrary
//! fabrics possible, but it left a dispatched `route_inter` call — per-hop
//! coordinate arithmetic plus a candidate-`Vec` rebuild — inside the RC
//! stage of every head flit. Routing is a pure function of
//! `(algo, here, dst_router)` for a fixed topology, so this module
//! enumerates it **once at build time** into a dense flat array and serves
//! the flit hot path with a single indexed load: no dispatch, no
//! allocation, no division.
//!
//! ## Layout
//!
//! One [`RouteSet`] (4 bytes: a length byte plus up to
//! [`MAX_ROUTE_CANDIDATES`] packed port indices — port indices always fit
//! a `u8` because [`NocConfig::validate`] caps `ports × vcs` at 64) per
//! conceptual `(here_router, dst_rack)` pair. Two physical layouts store
//! that array:
//!
//! - **Per-pair** (folded Clos): indexed
//!   `here.index() * rack_count + dst_rack.index()`. Spine routers
//!   appear as sources but never as destinations, so the table is
//!   `router_count × rack_count` entries — a 4×4-leaf Clos costs
//!   20 × 16 × 4 B = 1.25 KB.
//! - **Delta-compressed** (mesh, torus): dimension-order routing is
//!   *translation-invariant* — the candidate set is a pure function of
//!   the signed coordinate delta `(dx, dy) = dst − here` — so the
//!   per-pair array compresses to `(2W−1) × (2H−1)` distinct rows,
//!   indexed `(dy + H−1) · (2W−1) + (dx + W−1)` after two L1-resident
//!   `router → (x, y)` lookups. The paper's 8×8 mesh costs
//!   15 × 15 × 4 B = 900 B; a 32×32 datacenter mesh costs
//!   63 × 63 × 4 B ≈ 15.9 KB, where the uncompressed per-pair array
//!   would be 1024² × 4 B = 4 MB. That difference is not just memory:
//!   per-pair rows at datacenter scale get evicted between one router's
//!   RC lookups (measured ~7% *slower* end-to-end than on-the-fly
//!   routing on a 32×32 mesh), while the delta table stays cache-hot.
//!
//! Entries with zero delta / on the diagonal (`here == dst` rack) are
//! unused — ejection depends on the destination *node*, served by the
//! node maps below.
//!
//! Alongside the port table sit two node-indexed maps,
//! `node → dst_router` and `node → local ejection port`, which replace the
//! per-flit `router_of_node` division/modulo on the hot path.
//!
//! ## Build-time oracle contract
//!
//! [`RouteTable::build`] calls the topology's `route_inter` for every
//! pair and stores the candidates **in the exact order the topology
//! pushed them**. Candidate order is load-bearing: the router's adaptive
//! selection breaks ties by position, so a reordered table would change
//! tie-breaks and break bit-reproducibility. This is why entries store
//! explicit ordered ports rather than a port bitmask — `WestFirst`
//! pushes East (port `npr+2`) before South/North (`npr+1`/`npr+0`), an
//! order no ascending bitmask walk can reproduce. The on-the-fly path
//! stays alive as the oracle the table is built from (and differentially
//! tested against), and as the `LUMEN_ROUTE_TABLE=off` fallback.

use crate::config::NocConfig;
use crate::ids::{NodeId, PortId, RouterId};
use crate::routing::RoutingAlgorithm;
use crate::topology::{Topology, TopologyKind};
use std::sync::Arc;

/// Maximum number of minimal-route candidates any built-in algorithm
/// yields (`WestFirst` on a mesh: up to East + South/North… bounded by 3).
pub const MAX_ROUTE_CANDIDATES: usize = 3;

/// Tables larger than this fall back to on-the-fly routing rather than
/// paying the memory (64 MB ≈ a 4096-router fabric).
pub const MAX_ROUTE_TABLE_BYTES: usize = 64 << 20;

/// A packed, ordered candidate set: the output ports a head flit at one
/// router may take toward one destination rack, in the exact order the
/// routing algorithm proposed them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSet {
    len: u8,
    ports: [PortId; MAX_ROUTE_CANDIDATES],
}

impl RouteSet {
    /// The empty candidate set (diagonal table entries).
    pub const EMPTY: RouteSet = RouteSet {
        len: 0,
        ports: [PortId(0); MAX_ROUTE_CANDIDATES],
    };

    /// A single-candidate set.
    #[inline]
    pub fn single(port: PortId) -> RouteSet {
        let mut s = RouteSet::EMPTY;
        s.push(port);
        s
    }

    /// Packs a candidate slice (at most [`MAX_ROUTE_CANDIDATES`] ports),
    /// preserving order.
    pub fn from_slice(ports: &[PortId]) -> RouteSet {
        let mut s = RouteSet::EMPTY;
        for &p in ports {
            s.push(p);
        }
        s
    }

    #[inline]
    fn push(&mut self, port: PortId) {
        assert!(
            (self.len as usize) < MAX_ROUTE_CANDIDATES,
            "more than {MAX_ROUTE_CANDIDATES} route candidates"
        );
        self.ports[self.len as usize] = port;
        self.len += 1;
    }

    /// The candidates, in algorithm order.
    #[inline]
    pub fn as_slice(&self) -> &[PortId] {
        &self.ports[..self.len as usize]
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// How a [`Network`](crate::network::Network) acquires its route table.
#[derive(Debug, Clone, Default)]
pub enum RouteTableMode {
    /// Build a table for the configured topology/algorithm unless
    /// `LUMEN_ROUTE_TABLE=off` (or the table would exceed
    /// [`MAX_ROUTE_TABLE_BYTES`]). The default everywhere.
    #[default]
    Auto,
    /// Route on the fly (the pre-table behaviour). Used by the env
    /// fallback, the differential tests, and the `perf_events`
    /// before/after rows.
    Off,
    /// Adopt a table built elsewhere. The sharded backend builds one
    /// table per run and hands the same `Arc` to every shard replica, so
    /// replicas never rebuild it.
    Shared(Arc<RouteTable>),
}

impl RouteTableMode {
    /// Resolves the mode against a configuration: the table the network
    /// should route through, if any.
    pub fn resolve(self, config: &NocConfig) -> Option<Arc<RouteTable>> {
        match self {
            RouteTableMode::Auto => RouteTable::shared(config, config.routing),
            RouteTableMode::Off => None,
            RouteTableMode::Shared(table) => {
                assert!(
                    table.matches(config, config.routing),
                    "shared route table was built for a different geometry or algorithm"
                );
                Some(table)
            }
        }
    }
}

/// How the conceptual `(here, dst_rack)` candidate array is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// One entry per `(here, dst_rack)` pair:
    /// `entries[here * racks + dst_rack]`. The general form; used by the
    /// folded Clos, whose up/down routes are not translation-invariant.
    PerPair,
    /// Mesh/torus compression: routing is a pure function of the signed
    /// coordinate delta, so
    /// `entries[(dy + h−1) * (2w−1) + (dx + w−1)]` after two
    /// `coords` lookups. Keeps datacenter-scale tables cache-resident.
    Delta { width: i32, height: i32 },
}

/// A dense precomputed routing table for one `(topology, algorithm)`
/// pair. Immutable once built; share across shard replicas via `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteTable {
    kind: TopologyKind,
    algo: RoutingAlgorithm,
    layout: Layout,
    racks: usize,
    routers: usize,
    /// Packed candidate sets, indexed per [`Layout`].
    entries: Vec<RouteSet>,
    /// `router → (x, y)` grid coordinate (delta layout only; empty for
    /// per-pair).
    coords: Vec<(u8, u8)>,
    /// `node → serving router` (replaces the hot-path division).
    node_router: Vec<RouterId>,
    /// `node → local ejection port` (replaces the hot-path modulo).
    node_local: Vec<PortId>,
}

impl RouteTable {
    /// Enumerates `route_inter` into the packed table for the configured
    /// topology, preserving candidate order exactly: per signed
    /// coordinate delta on the translation-invariant mesh/torus, per
    /// `(here, dst_rack)` pair on the folded Clos.
    pub fn build(config: &NocConfig, algo: RoutingAlgorithm) -> RouteTable {
        let topo = config.topo();
        let routers = topo.router_count();
        let racks = topo.rack_count();
        let mut scratch = Vec::with_capacity(MAX_ROUTE_CANDIDATES);
        let (layout, entries, coords) = match config.topology {
            TopologyKind::Mesh | TopologyKind::Torus => {
                let (w, h) = (config.width as i32, config.height as i32);
                let mut entries = vec![RouteSet::EMPTY; ((2 * w - 1) * (2 * h - 1)) as usize];
                for dy in -(h - 1)..=(h - 1) {
                    for dx in -(w - 1)..=(w - 1) {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        // A representative pair realizing this delta;
                        // translation invariance (asserted exhaustively
                        // below in debug builds, and differentially by
                        // tests/tests/route_table.rs) makes any choice
                        // equivalent.
                        let (x0, y0) = (dx.min(0).unsigned_abs(), dy.min(0).unsigned_abs());
                        let here = RouterId(y0 * config.width as u32 + x0);
                        let dst = RouterId(
                            (y0 as i32 + dy) as u32 * config.width as u32 + (x0 as i32 + dx) as u32,
                        );
                        scratch.clear();
                        topo.route_inter(algo, here, dst, &mut scratch);
                        debug_assert!(!scratch.is_empty(), "no route for delta ({dx}, {dy})");
                        entries[((dy + h - 1) * (2 * w - 1) + (dx + w - 1)) as usize] =
                            RouteSet::from_slice(&scratch);
                    }
                }
                let coords = (0..routers)
                    .map(|r| {
                        let c = config.coord_of(RouterId(r as u32));
                        (c.x, c.y)
                    })
                    .collect();
                (Layout::Delta { width: w, height: h }, entries, coords)
            }
            TopologyKind::FoldedClos { .. } => {
                let mut entries = vec![RouteSet::EMPTY; routers * racks];
                for here in 0..routers {
                    let here_id = RouterId(here as u32);
                    for dst in 0..racks {
                        if here == dst {
                            continue;
                        }
                        scratch.clear();
                        topo.route_inter(algo, here_id, RouterId(dst as u32), &mut scratch);
                        debug_assert!(!scratch.is_empty(), "no route r{here} -> r{dst}");
                        entries[here * racks + dst] = RouteSet::from_slice(&scratch);
                    }
                }
                (Layout::PerPair, entries, Vec::new())
            }
        };
        let nodes = config.node_count();
        let node_router = (0..nodes)
            .map(|n| config.router_of_node(NodeId(n as u32)))
            .collect();
        let node_local = (0..nodes)
            .map(|n| PortId(config.local_index(NodeId(n as u32))))
            .collect();
        let table = RouteTable {
            kind: config.topology,
            algo,
            layout,
            racks,
            routers,
            entries,
            coords,
            node_router,
            node_local,
        };
        // Debug builds re-check the whole table against the oracle — for
        // the delta layout this is the exhaustive translation-invariance
        // proof, one `route_inter` per (here, dst_rack) pair.
        #[cfg(debug_assertions)]
        for here in 0..routers {
            let here_id = RouterId(here as u32);
            for dst in 0..racks {
                if here == dst {
                    continue;
                }
                scratch.clear();
                topo.route_inter(algo, here_id, RouterId(dst as u32), &mut scratch);
                debug_assert_eq!(
                    table.inter(here_id, RouterId(dst as u32)).as_slice(),
                    &scratch[..],
                    "table disagrees with route_inter at r{here} -> r{dst}"
                );
            }
        }
        table
    }

    /// Builds a shareable table unless disabled by `LUMEN_ROUTE_TABLE=off`
    /// (read once per process) or oversized
    /// (> [`MAX_ROUTE_TABLE_BYTES`]); `None` means route on the fly.
    pub fn shared(config: &NocConfig, algo: RoutingAlgorithm) -> Option<Arc<RouteTable>> {
        if !env_enabled() {
            return None;
        }
        let entry_count = match config.topology {
            TopologyKind::Mesh | TopologyKind::Torus => {
                (2 * config.width as usize - 1) * (2 * config.height as usize - 1)
            }
            TopologyKind::FoldedClos { .. } => config.router_count() * config.rack_count(),
        };
        if entry_count * std::mem::size_of::<RouteSet>() > MAX_ROUTE_TABLE_BYTES {
            return None;
        }
        Some(Arc::new(RouteTable::build(config, algo)))
    }

    /// The algorithm this table was built for.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algo
    }

    /// Whether this table serves the given configuration/algorithm
    /// (topology kind plus entry and node counts).
    pub fn matches(&self, config: &NocConfig, algo: RoutingAlgorithm) -> bool {
        self.kind == config.topology
            && self.algo == algo
            && self.routers == config.router_count()
            && self.racks == config.rack_count()
            && self.node_router.len() == config.node_count()
    }

    /// Heap footprint of the packed tables, in bytes.
    pub fn bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<RouteSet>()
            + self.coords.len() * 2
            + self.node_router.len() * std::mem::size_of::<RouterId>()
            + self.node_local.len() * std::mem::size_of::<PortId>()
    }

    /// The inter-router table row for `here → dst_router` (`here` must
    /// differ from `dst_router`).
    #[inline]
    fn inter(&self, here: RouterId, dst_router: RouterId) -> RouteSet {
        let idx = match self.layout {
            Layout::PerPair => here.index() * self.racks + dst_router.index(),
            Layout::Delta { width, height } => {
                let (hx, hy) = self.coords[here.index()];
                let (dx, dy) = self.coords[dst_router.index()];
                let dx = dx as i32 - hx as i32 + (width - 1);
                let dy = dy as i32 - hy as i32 + (height - 1);
                (dy * (2 * width - 1) + dx) as usize
            }
        };
        self.entries[idx]
    }

    /// The flit-hot-path lookup: every permitted output port at `here`
    /// for a packet addressed to node `dst`, in algorithm order. At the
    /// destination rack this is the node's ejection port; elsewhere it is
    /// one indexed load from the packed table (after the L1-resident
    /// coordinate lookups in the delta layout). Returns by value (4
    /// bytes) so the caller keeps no borrow on the table.
    #[inline]
    pub fn candidates(&self, here: RouterId, dst: NodeId) -> RouteSet {
        let dst_router = self.node_router[dst.index()];
        if here == dst_router {
            RouteSet::single(self.node_local[dst.index()])
        } else {
            self.inter(here, dst_router)
        }
    }

    /// The router serving `dst` (table-backed [`NocConfig::router_of_node`]).
    #[inline]
    pub fn router_of_node(&self, dst: NodeId) -> RouterId {
        self.node_router[dst.index()]
    }
}

/// Whether `LUMEN_ROUTE_TABLE` permits table-backed routing (read once
/// per process; `off`/`0` disables, `on`/`1`/unset enables).
pub fn env_enabled() -> bool {
    use std::sync::OnceLock;
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("LUMEN_ROUTE_TABLE").as_deref() {
        Ok("off") | Ok("0") => false,
        Ok("on") | Ok("1") | Ok("") | Err(_) => true,
        Ok(other) => panic!(
            "unknown LUMEN_ROUTE_TABLE {other:?} (expected \"on\"/\"1\" or \"off\"/\"0\")"
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::route_candidates;
    use crate::topology::TopologyKind;

    fn all_configs() -> Vec<NocConfig> {
        let mut configs = vec![NocConfig::paper_default(), NocConfig::small_for_tests()];
        let mut torus = NocConfig::paper_default();
        torus.topology = TopologyKind::Torus;
        configs.push(torus);
        let mut clos = NocConfig::paper_default();
        clos.width = 4;
        clos.height = 4;
        clos.nodes_per_rack = 4;
        clos.topology = TopologyKind::FoldedClos { spines: 4 };
        configs.push(clos);
        configs
    }

    #[test]
    fn table_matches_oracle_on_every_pair() {
        let mut oracle = Vec::new();
        for config in all_configs() {
            for algo in [
                RoutingAlgorithm::XY,
                RoutingAlgorithm::YX,
                RoutingAlgorithm::WestFirst,
            ] {
                if algo == RoutingAlgorithm::WestFirst
                    && config.topology == TopologyKind::Torus
                {
                    continue; // rejected by validate() without opt-in
                }
                let table = RouteTable::build(&config, algo);
                for here in 0..config.router_count() {
                    let here = RouterId(here as u32);
                    for node in 0..config.node_count() {
                        let dst = NodeId(node as u32);
                        route_candidates(&config, algo, here, dst, &mut oracle);
                        let got = table.candidates(here, dst);
                        assert_eq!(
                            got.as_slice(),
                            &oracle[..],
                            "{here} -> {dst} under {algo:?} on {:?}",
                            config.topology
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn route_set_preserves_order() {
        // WestFirst pushes East before South; a bitmask would invert this.
        let ports = [PortId(10), PortId(9)];
        let s = RouteSet::from_slice(&ports);
        assert_eq!(s.as_slice(), &ports);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(RouteSet::EMPTY.is_empty());
    }

    #[test]
    fn route_set_is_small() {
        assert_eq!(std::mem::size_of::<RouteSet>(), 4);
    }

    #[test]
    fn memory_math() {
        let c = NocConfig::paper_default();
        let t = RouteTable::build(&c, RoutingAlgorithm::XY);
        // Delta-compressed 8×8 mesh: 15 × 15 entries × 4 B + 64 router
        // coords × 2 B + 512-node maps (4 B router + 1 B port).
        assert_eq!(t.bytes(), 15 * 15 * 4 + 64 * 2 + 512 * 4 + 512);
        assert!(t.matches(&c, RoutingAlgorithm::XY));
        assert!(!t.matches(&c, RoutingAlgorithm::YX));
        assert!(!t.matches(&NocConfig::small_for_tests(), RoutingAlgorithm::XY));

        // The Clos keeps the per-pair layout: routers × racks entries.
        let mut clos = c.clone();
        clos.width = 4;
        clos.height = 4;
        clos.nodes_per_rack = 4;
        clos.topology = TopologyKind::FoldedClos { spines: 4 };
        let t = RouteTable::build(&clos, RoutingAlgorithm::XY);
        assert_eq!(t.bytes(), 20 * 16 * 4 + 64 * 4 + 64);
    }

    #[test]
    fn same_geometry_different_kind_is_a_mismatch() {
        // A mesh table must not serve a torus of the same dimensions:
        // entry counts agree, routes do not.
        let mesh = NocConfig::paper_default();
        let mut torus = NocConfig::paper_default();
        torus.topology = TopologyKind::Torus;
        let t = RouteTable::build(&mesh, RoutingAlgorithm::XY);
        assert!(!t.matches(&torus, RoutingAlgorithm::XY));
    }

    #[test]
    fn node_maps_kill_the_division() {
        let c = NocConfig::paper_default();
        let t = RouteTable::build(&c, RoutingAlgorithm::XY);
        for n in 0..c.node_count() {
            let n = NodeId(n as u32);
            assert_eq!(t.router_of_node(n), c.router_of_node(n));
            let at_home = t.candidates(c.router_of_node(n), n);
            assert_eq!(at_home.as_slice(), &[PortId(c.local_index(n))]);
        }
    }

    #[test]
    fn mode_resolution() {
        let c = NocConfig::small_for_tests();
        assert!(RouteTableMode::Off.resolve(&c).is_none());
        let table = Arc::new(RouteTable::build(&c, c.routing));
        let resolved = RouteTableMode::Shared(Arc::clone(&table)).resolve(&c);
        assert!(Arc::ptr_eq(&resolved.unwrap(), &table));
        // Auto obeys the (unset-in-tests ⇒ enabled) env switch.
        if env_enabled() {
            assert!(RouteTableMode::Auto.resolve(&c).is_some());
        } else {
            assert!(RouteTableMode::Auto.resolve(&c).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "different geometry")]
    fn mismatched_shared_table_rejected() {
        let c = NocConfig::paper_default();
        let small = Arc::new(RouteTable::build(&NocConfig::small_for_tests(), c.routing));
        let _ = RouteTableMode::Shared(small).resolve(&c);
    }
}
