//! The 5-stage pipelined router (paper Fig. 4(b)).
//!
//! Each router has `nodes_per_rack` local injection/ejection ports plus
//! North/South/East/West, a crossbar, and per-port policy hooks. The
//! pipeline is modeled at stage-per-cycle granularity:
//!
//! 1. **RC** — a head flit at the front of an idle VC computes its output
//!    port (dimension-order routing).
//! 2. **VA** — the packet acquires a free virtual channel on that output.
//! 3. **SA** — per-output round-robin switch allocation among active input
//!    VCs holding flits and downstream credits.
//! 4. **ST** — the winning flit crosses the crossbar (one cycle).
//! 5. **LT** — the flit serializes onto the output link at the link's own
//!    bit rate (possibly several core cycles at reduced rates).
//!
//! Credit-based flow control: each output port tracks free buffer slots in
//! the downstream input port per VC; a credit returns upstream when a flit
//! leaves an input buffer.

use crate::arbiter::RoundRobinArbiter;
use crate::buffer::InputBuffer;
use crate::config::NocConfig;
use crate::flit::FlitKind;
use crate::ids::{LinkId, PortId, RouterId, VcId};
use crate::link::Link;
use crate::network::Effect;
use crate::route_table::{RouteSet, RouteTable};
use crate::routing::{route_candidates, RoutingAlgorithm};
use lumen_desim::Picos;
use serde::{Deserialize, Serialize};

/// Per-input-VC pipeline state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcState {
    /// No packet in flight; awaiting a head flit.
    Idle,
    /// Route computed; waiting for an output VC.
    VcAlloc {
        /// The computed output port.
        out_port: PortId,
    },
    /// Output VC held; flits compete in switch allocation.
    Active {
        /// The output port the packet traverses.
        out_port: PortId,
        /// The output VC the packet holds.
        out_vc: VcId,
    },
}

/// One input port: buffer, per-VC state, and the link that feeds it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputPort {
    /// The per-VC flit FIFOs.
    pub buffer: InputBuffer,
    /// Pipeline state per VC.
    pub vc_state: Vec<VcState>,
    /// The upstream link filling this port (None on mesh-edge ports).
    pub feeder: Option<LinkId>,
    /// Sum of per-cycle occupancy samples (numerator of the paper's `Bu`).
    pub occupancy_accum: u64,
}

impl InputPort {
    fn new(config: &NocConfig) -> Self {
        InputPort {
            buffer: InputBuffer::new(config.vcs, config.depth_per_vc()),
            vc_state: vec![VcState::Idle; config.vcs as usize],
            feeder: None,
            occupancy_accum: 0,
        }
    }

    /// Drains the accumulated occupancy counter.
    pub fn take_occupancy_accum(&mut self) -> u64 {
        std::mem::replace(&mut self.occupancy_accum, 0)
    }
}

/// One output port: downstream credit state, VC ownership, and arbiters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputPort {
    /// The outgoing link (None on mesh-edge ports).
    pub link: Option<LinkId>,
    /// Free downstream buffer slots per VC.
    pub credits: Vec<u16>,
    /// Which input (port, VC) currently owns each output VC.
    pub vc_owner: Vec<Option<(PortId, VcId)>>,
    sa_arbiter: RoundRobinArbiter,
    va_arbiter: RoundRobinArbiter,
}

impl OutputPort {
    fn new(config: &NocConfig) -> Self {
        let requesters = config.ports_per_router() * config.vcs as usize;
        OutputPort {
            link: None,
            credits: vec![config.depth_per_vc(); config.vcs as usize],
            vc_owner: vec![None; config.vcs as usize],
            sa_arbiter: RoundRobinArbiter::new(requesters),
            va_arbiter: RoundRobinArbiter::new(requesters),
        }
    }
}

/// A bitset over the router's `ports × vcs` input-VC slots, iterated in
/// ascending slot order — the same `(port, vc)` order the pipeline's full
/// scans used, so replacing a scan with a set walk is order-identical.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SlotSet {
    words: Vec<u64>,
}

impl SlotSet {
    fn new(slots: usize) -> Self {
        SlotSet {
            words: vec![0; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        self.words[i >> 6] &= !(1u64 << (i & 63));
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// A rack's communication router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Router {
    id: RouterId,
    routing: RoutingAlgorithm,
    vcs: usize,
    /// Input ports, indexed by [`PortId`].
    pub inputs: Vec<InputPort>,
    /// Output ports, indexed by [`PortId`].
    pub outputs: Vec<OutputPort>,
    sa_rotate: usize,
    // Scratch buffers reused across ticks to avoid per-cycle allocation.
    // Requesters are bucketed per output port as a u64 bitmask over the
    // `port * vcs + vc` slot space (capped at 64 slots per router), so
    // allocation iterates set bits instead of pushing through Vecs.
    scratch_port_mask: Vec<u64>,
    scratch_routes: Vec<PortId>,
    /// Flits this router has switched over its lifetime.
    pub flits_switched: u64,
    /// Flits accepted into input buffers over its lifetime. The invariant
    /// `flits_accepted == flits_switched + buffered` holds at every event
    /// boundary (checked by the conservation auditor).
    pub flits_accepted: u64,
    /// Switch-allocation requests denied over its lifetime: a requester
    /// whose output link was mid-rate-change, that lost arbitration, or
    /// was crossbar/credit-ineligible. A flit requests once per cycle
    /// until granted, so this counts request-cycles, not distinct flits.
    pub sa_denials: u64,
    // Fast-path counters: flits buffered and VCs not in Idle. When both
    // are zero the router has nothing to do this cycle.
    buffered_flits: u32,
    active_vcs: u32,
    // Incrementally maintained pipeline-stage membership, one bit per
    // input-VC slot (`port * vcs + vc`), so each stage visits only live
    // VCs instead of scanning every slot every cycle:
    // - `sa_ready`: state Active and buffer non-empty (SA requesters)
    // - `va_set`:   state VcAlloc (VA requesters)
    // - `rc_ready`: state Idle and buffer non-empty (RC candidates)
    sa_ready: SlotSet,
    va_set: SlotSet,
    rc_ready: SlotSet,
}

impl Router {
    /// Creates a router with unwired ports (the network builder attaches
    /// links and feeders afterwards).
    pub fn new(id: RouterId, routing: RoutingAlgorithm, config: &NocConfig) -> Self {
        let p = config.ports_per_router();
        let slots = p * config.vcs as usize;
        assert!(
            slots <= 64,
            "mask-based switch/VC allocation supports at most 64 input-VC \
             slots per router (got {slots})"
        );
        Router {
            id,
            routing,
            vcs: config.vcs as usize,
            inputs: (0..p).map(|_| InputPort::new(config)).collect(),
            outputs: (0..p).map(|_| OutputPort::new(config)).collect(),
            sa_rotate: 0,
            scratch_port_mask: vec![0; p],
            // Sized to the candidate bound so the fallback RC path never
            // grows it mid-run (audited: route_candidates pushes at most
            // MAX_ROUTE_CANDIDATES ports, or a single ejection port).
            scratch_routes: Vec::with_capacity(crate::route_table::MAX_ROUTE_CANDIDATES),
            flits_switched: 0,
            flits_accepted: 0,
            sa_denials: 0,
            buffered_flits: 0,
            active_vcs: 0,
            sa_ready: SlotSet::new(slots),
            va_set: SlotSet::new(slots),
            rc_ready: SlotSet::new(slots),
        }
    }

    /// The router's id.
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// One core-clock cycle: SA/ST, then VA, then RC, then statistics.
    ///
    /// `links` is the network-global link table; emitted flit departures
    /// and credit returns are appended to `effects`. `route_table`, when
    /// present, serves RC with precomputed candidates (identical order);
    /// `None` routes on the fly.
    pub fn tick(
        &mut self,
        now: Picos,
        config: &NocConfig,
        route_table: Option<&RouteTable>,
        links: &mut [Link],
        effects: &mut Vec<Effect>,
    ) {
        if self.buffered_flits == 0 && self.active_vcs == 0 {
            return; // idle fast path: nothing buffered, no packet in flight
        }
        self.switch_allocation(now, config, links, effects);
        self.vc_allocation(config);
        self.route_computation(config, route_table);
        for input in &mut self.inputs {
            input.occupancy_accum += input.buffer.total_occupancy() as u64;
        }
    }

    /// SA + ST: for each output port (rotating start for fairness), grant
    /// one input VC and launch its flit onto the link one cycle later.
    fn switch_allocation(
        &mut self,
        now: Picos,
        config: &NocConfig,
        links: &mut [Link],
        effects: &mut Vec<Effect>,
    ) {
        let ports = self.outputs.len();
        let vcs = config.vcs as usize;
        if self.sa_ready.is_empty() {
            // No Active VC holds a flit: nothing to allocate, but the
            // rotating priority still advances exactly as it always did.
            self.sa_rotate = if self.sa_rotate + 1 == ports { 0 } else { self.sa_rotate + 1 };
            return;
        }
        let st_time = now + config.cycle();
        let mut input_used: u64 = 0;
        // Bucket requesters by output port once; `sa_ready` walks the same
        // ascending (port, vc) order the full scan did, visiting only VCs
        // that are Active with a flit buffered.
        self.scratch_port_mask.fill(0);
        let mut w = self.sa_ready.words[0];
        while w != 0 {
            let req = w.trailing_zeros() as usize;
            w &= w - 1;
            let (ip, vc) = (req / vcs, req % vcs);
            let VcState::Active { out_port, .. } = self.inputs[ip].vc_state[vc] else {
                unreachable!("sa_ready slot not in Active state");
            };
            debug_assert!(self.inputs[ip].buffer.front(VcId(vc as u8)).is_some());
            self.scratch_port_mask[out_port.0 as usize] |= 1u64 << req;
        }
        // Rotating scan over output ports without a modulo per step.
        let mut next_op = self.sa_rotate;
        for _ in 0..ports {
            let op = next_op;
            next_op = if op + 1 == ports { 0 } else { op + 1 };
            let req_mask = self.scratch_port_mask[op];
            if req_mask == 0 {
                continue;
            }
            let Some(link_id) = self.outputs[op].link else {
                continue;
            };
            links[link_id.index()].note_demand();
            if !links[link_id.index()].ready_at(st_time) {
                // Link busy serializing or relocking: every requester for
                // this output port loses the cycle.
                self.sa_denials += req_mask.count_ones() as u64;
                continue;
            }
            // An input port already granted this cycle (crossbar conflict)
            // or an output VC out of credits disqualifies a requester.
            let mut eligible: u64 = 0;
            let mut m = req_mask;
            while m != 0 {
                let req = m.trailing_zeros() as usize;
                m &= m - 1;
                let (ip, vc) = (req / vcs, req % vcs);
                let ok = input_used >> ip & 1 == 0
                    && match self.inputs[ip].vc_state[vc] {
                        VcState::Active { out_vc, .. } => {
                            self.outputs[op].credits[out_vc.0 as usize] > 0
                        }
                        _ => false,
                    };
                eligible |= (ok as u64) << req;
            }
            let Some(req) = self.outputs[op].sa_arbiter.grant_masked(eligible) else {
                // Nothing eligible (crossbar conflicts or exhausted
                // credits): all requesters lose.
                self.sa_denials += req_mask.count_ones() as u64;
                continue;
            };
            let (ip, vc) = (req / vcs, VcId((req % vcs) as u8));
            let VcState::Active { out_vc, .. } = self.inputs[ip].vc_state[vc.0 as usize] else {
                unreachable!("eligibility mask admitted a non-active VC");
            };
            let flit = self.inputs[ip]
                .buffer
                .pop(vc)
                .expect("eligibility mask admitted an empty VC");
            self.outputs[op].credits[out_vc.0 as usize] -= 1;
            self.flits_switched += 1;
            // One requester won; its co-requesters for this port lost.
            self.sa_denials += (req_mask.count_ones() - 1) as u64;
            self.buffered_flits -= 1;
            if self.inputs[ip].buffer.is_empty(vc) {
                // Last buffered flit left; the VC stops requesting the
                // switch until another flit arrives (or, for a tail, until
                // a new packet restarts the pipeline below).
                self.sa_ready.clear(req);
            }
            let arrival = links[link_id.index()].start_flit(st_time);
            effects.push(Effect::Flit {
                link: link_id,
                vc: out_vc,
                flit,
                at: arrival,
            });
            if let Some(feeder) = self.inputs[ip].feeder {
                effects.push(Effect::Credit {
                    link: feeder,
                    vc,
                    at: now + config.credit_delay,
                });
            }
            if flit.kind.is_tail() {
                self.outputs[op].vc_owner[out_vc.0 as usize] = None;
                self.inputs[ip].vc_state[vc.0 as usize] = VcState::Idle;
                self.active_vcs -= 1;
                self.sa_ready.clear(req);
                if !self.inputs[ip].buffer.is_empty(vc) {
                    // The next packet's head is already waiting: it becomes
                    // an RC candidate this very cycle (RC runs after SA).
                    self.rc_ready.set(req);
                }
            }
            input_used |= 1u64 << ip;
        }
        self.sa_rotate = if self.sa_rotate + 1 == ports { 0 } else { self.sa_rotate + 1 };
    }

    /// VA: hand free output VCs to packets whose route is computed.
    fn vc_allocation(&mut self, config: &NocConfig) {
        let ports = self.outputs.len();
        let vcs = config.vcs as usize;
        if self.va_set.is_empty() {
            return;
        }
        // Bucket VC-allocation requesters by requested output port, in the
        // same ascending (port, vc) order the full scan produced.
        self.scratch_port_mask.fill(0);
        let mut w = self.va_set.words[0];
        while w != 0 {
            let req = w.trailing_zeros() as usize;
            w &= w - 1;
            let (ip, vc) = (req / vcs, req % vcs);
            let VcState::VcAlloc { out_port } = self.inputs[ip].vc_state[vc] else {
                unreachable!("va_set slot not in VcAlloc state");
            };
            self.scratch_port_mask[out_port.0 as usize] |= 1u64 << req;
        }
        for op in 0..ports {
            let mut req_mask = self.scratch_port_mask[op];
            if req_mask == 0 || self.outputs[op].link.is_none() {
                continue;
            }
            for out_vc in 0..vcs {
                if self.outputs[op].vc_owner[out_vc].is_some() {
                    continue;
                }
                let Some(req) = self.outputs[op].va_arbiter.grant_masked(req_mask) else {
                    break; // no remaining requester for this output
                };
                req_mask &= !(1u64 << req);
                let (ip, vc) = (req / vcs, req % vcs);
                self.outputs[op].vc_owner[out_vc] = Some((PortId(ip as u8), VcId(vc as u8)));
                self.inputs[ip].vc_state[vc] = VcState::Active {
                    out_port: PortId(op as u8),
                    out_vc: VcId(out_vc as u8),
                };
                self.va_set.clear(req);
                if !self.inputs[ip].buffer.is_empty(VcId(vc as u8)) {
                    self.sa_ready.set(req);
                }
            }
        }
    }

    /// RC: idle VCs with a head flit at the front compute their route.
    /// Deterministic algorithms yield one output; under west-first the
    /// router selects adaptively among the permitted minimal outputs,
    /// preferring ready links (not mid-transition) with the most
    /// downstream credits — which makes routing *power-aware*: traffic
    /// steers around links parked at low rates or disabled for relock.
    fn route_computation(&mut self, config: &NocConfig, table: Option<&RouteTable>) {
        let vcs = config.vcs as usize;
        // Every rc_ready VC (Idle with a buffered head flit) computes its
        // route this cycle, so the whole word empties; take it up front.
        for wi in 0..self.rc_ready.words.len() {
            let mut w = std::mem::take(&mut self.rc_ready.words[wi]);
            while w != 0 {
                let req = (wi << 6) | w.trailing_zeros() as usize;
                w &= w - 1;
                let (ip, vc) = (req / vcs, req % vcs);
                debug_assert_eq!(self.inputs[ip].vc_state[vc], VcState::Idle);
                let front = self.inputs[ip]
                    .buffer
                    .front(VcId(vc as u8))
                    .expect("rc_ready VC with an empty buffer");
                debug_assert!(
                    front.kind.is_head(),
                    "non-head flit {front} at front of idle VC: wormhole order violated"
                );
                let dst = front.dst;
                // The hot path: one indexed load from the precomputed
                // table. The fallback (LUMEN_ROUTE_TABLE=off, oversized
                // tables) recomputes through the topology; both yield the
                // same candidates in the same order, so selection below is
                // bit-identical either way.
                let candidates = match table {
                    Some(t) => t.candidates(self.id, dst),
                    None => {
                        route_candidates(
                            config,
                            self.routing,
                            self.id,
                            dst,
                            &mut self.scratch_routes,
                        );
                        RouteSet::from_slice(&self.scratch_routes)
                    }
                };
                let cands = candidates.as_slice();
                let out_port = if cands.len() == 1 {
                    cands[0]
                } else {
                    let mut best = cands[0];
                    let mut best_score = -1i64;
                    for &cand in cands {
                        let out = &self.outputs[cand.0 as usize];
                        let free_vc = out.vc_owner.iter().filter(|o| o.is_none()).count() as i64;
                        let credits: i64 =
                            out.credits.iter().map(|&c| c as i64).sum();
                        let score = free_vc * 1_000 + credits;
                        if score > best_score {
                            best_score = score;
                            best = cand;
                        }
                    }
                    best
                };
                self.inputs[ip].vc_state[vc] = VcState::VcAlloc { out_port };
                self.va_set.set(req);
                self.active_vcs += 1;
            }
        }
    }

    /// Accepts a flit delivered by an upstream link into an input buffer.
    pub fn accept_flit(&mut self, port: PortId, vc: VcId, flit: crate::flit::Flit) {
        let ip = port.0 as usize;
        self.inputs[ip].buffer.push(vc, flit);
        // A previously-empty VC becomes a pipeline candidate: Idle VCs go
        // to RC, Active ones back into SA contention. VcAlloc VCs are
        // already tracked in va_set and need nothing here.
        match self.inputs[ip].vc_state[vc.0 as usize] {
            VcState::Idle => self.rc_ready.set(ip * self.vcs + vc.0 as usize),
            VcState::Active { .. } => self.sa_ready.set(ip * self.vcs + vc.0 as usize),
            VcState::VcAlloc { .. } => {}
        }
        self.buffered_flits += 1;
        self.flits_accepted += 1;
    }

    /// Returns a credit to an output port's VC.
    ///
    /// # Panics
    ///
    /// Panics if the credit would exceed the downstream buffer capacity
    /// (a flow-control accounting bug).
    pub fn return_credit(&mut self, port: PortId, vc: VcId, depth_per_vc: u16) {
        let c = &mut self.outputs[port.0 as usize].credits[vc.0 as usize];
        assert!(
            *c < depth_per_vc,
            "credit overflow on {}:{port}:{vc}",
            self.id
        );
        *c += 1;
    }

    /// Whether every input buffer and pipeline state is empty/idle (used
    /// for drain detection in tests and experiments).
    pub fn is_quiescent(&self) -> bool {
        self.inputs.iter().all(|p| {
            p.buffer.total_occupancy() == 0
                && p.vc_state.iter().all(|s| *s == VcState::Idle)
        })
    }

    /// The flit kind at the front of an input VC (testing aid).
    pub fn front_kind(&self, port: PortId, vc: VcId) -> Option<FlitKind> {
        self.inputs[port.0 as usize].buffer.front(vc).map(|f| f.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Packet;
    use crate::ids::{NodeId, PacketId};
    use crate::link::{Endpoint, LinkKind};
    use lumen_opto::Gbps;

    /// A 1-router harness: router 0 of a 2×2 mesh with 2 local ports,
    /// with an ejection link on local port 0 and an East link.
    struct Harness {
        config: NocConfig,
        router: Router,
        table: Option<std::sync::Arc<RouteTable>>,
        links: Vec<Link>,
        effects: Vec<Effect>,
        now: Picos,
    }

    impl Harness {
        fn new() -> Self {
            let config = NocConfig::small_for_tests();
            let mut router = Router::new(RouterId(0), RoutingAlgorithm::XY, &config);
            let eject = Link::new(
                LinkId(0),
                LinkKind::Ejection,
                Endpoint::RouterPort {
                    router: RouterId(0),
                    port: PortId(0),
                },
                Endpoint::Node(NodeId(0)),
                config.flit_bits,
                config.propagation,
                Gbps::from_gbps(10.0),
            );
            let east = Link::new(
                LinkId(1),
                LinkKind::InterRouter,
                Endpoint::RouterPort {
                    router: RouterId(0),
                    port: PortId(4), // East = 2 locals + index 2
                },
                Endpoint::RouterPort {
                    router: RouterId(1),
                    port: PortId(5), // West on the neighbor
                },
                config.flit_bits,
                config.propagation,
                Gbps::from_gbps(10.0),
            );
            router.outputs[0].link = Some(LinkId(0));
            router.outputs[4].link = Some(LinkId(1));
            router.inputs[1].feeder = Some(LinkId(7)); // pretend injection feeder
            // Honors LUMEN_ROUTE_TABLE, so the suite covers the fallback
            // RC path too when CI replays with the table disabled.
            let table = RouteTable::shared(&config, RoutingAlgorithm::XY);
            Harness {
                config,
                router,
                table,
                links: vec![eject, east],
                effects: Vec::new(),
                now: Picos::ZERO,
            }
        }

        fn tick(&mut self) {
            self.router.tick(
                self.now,
                &self.config,
                self.table.as_deref(),
                &mut self.links,
                &mut self.effects,
            );
            self.now += self.config.cycle();
        }
    }

    fn packet_to(dst: NodeId, size: u32) -> Packet {
        Packet::new(PacketId(1), NodeId(1), dst, size, Picos::ZERO)
    }

    #[test]
    fn head_flit_pipeline_latency() {
        let mut h = Harness::new();
        // Destination node 0 lives on this router → ejection port 0.
        let pkt = packet_to(NodeId(0), 1);
        for f in pkt.into_flits() {
            h.router.accept_flit(PortId(1), VcId(0), f);
        }
        // Cycle 1: RC, cycle 2: VA, cycle 3: SA (flit pops), ST at cycle 4.
        h.tick();
        assert!(h.effects.is_empty());
        assert_eq!(
            h.router.inputs[1].vc_state[0],
            VcState::VcAlloc { out_port: PortId(0) }
        );
        h.tick();
        assert!(matches!(h.router.inputs[1].vc_state[0], VcState::Active { .. }));
        h.tick();
        // SA granted during the 3rd tick; flit departure scheduled.
        let flit_events: Vec<&Effect> = h
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::Flit { .. }))
            .collect();
        assert_eq!(flit_events.len(), 1);
        if let Effect::Flit { link, at, .. } = flit_events[0] {
            assert_eq!(*link, LinkId(0));
            // ST at cycle 3 start + 1 cycle, + 1 cycle serialization + prop.
            let expect = h.config.cycle() * 3 + h.config.cycle() + h.config.propagation;
            assert_eq!(*at, expect);
        }
        // Credit returned to the feeder.
        assert!(h
            .effects
            .iter()
            .any(|e| matches!(e, Effect::Credit { link, .. } if *link == LinkId(7))));
        // Tail flit released everything.
        assert_eq!(h.router.inputs[1].vc_state[0], VcState::Idle);
        assert!(h.router.is_quiescent());
    }

    #[test]
    fn multi_flit_packet_streams_one_per_cycle() {
        let mut h = Harness::new();
        for f in packet_to(NodeId(0), 3).into_flits() {
            h.router.accept_flit(PortId(1), VcId(0), f);
        }
        for _ in 0..6 {
            h.tick();
        }
        let departures: Vec<Picos> = h
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::Flit { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(departures.len(), 3);
        // Consecutive flits leave one cycle apart (full-rate link).
        assert_eq!(departures[1] - departures[0], h.config.cycle());
        assert_eq!(departures[2] - departures[1], h.config.cycle());
    }

    #[test]
    fn credits_block_when_exhausted() {
        let mut h = Harness::new();
        // Drain all credits from output 0 (depth 4 in the test config),
        // feeding flits in only as buffer space allows (as a credit-
        // respecting upstream would).
        let depth = h.config.depth_per_vc();
        let mut pending: Vec<_> = packet_to(NodeId(0), 16).into_flits().take(8).collect();
        pending.reverse();
        for _ in 0..24 {
            if let Some(&next) = pending.last() {
                if h.router.inputs[1].buffer.free_slots(VcId(0)) > 0 {
                    h.router.accept_flit(PortId(1), VcId(0), next);
                    pending.pop();
                }
            }
            h.tick();
        }
        let sent = h
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::Flit { .. }))
            .count();
        // Only `depth` flits may leave before credits run out.
        assert_eq!(sent, depth as usize);
        // Returning one credit lets exactly one more through.
        h.router.return_credit(PortId(0), VcId(0), h.config.depth_per_vc() as u16);
        h.effects.clear();
        h.tick();
        h.tick();
        let sent_after = h
            .effects
            .iter()
            .filter(|e| matches!(e, Effect::Flit { .. }))
            .count();
        assert_eq!(sent_after, 1);
    }

    #[test]
    fn disabled_link_blocks_switch_allocation() {
        let mut h = Harness::new();
        h.links[0].disable_until(Picos::from_us(1));
        for f in packet_to(NodeId(0), 1).into_flits() {
            h.router.accept_flit(PortId(1), VcId(0), f);
        }
        for _ in 0..10 {
            h.tick();
        }
        assert!(h.effects.iter().all(|e| !matches!(e, Effect::Flit { .. })));
        // After the disable window the flit flows.
        while h.now < Picos::from_us(1) {
            h.tick();
        }
        h.tick();
        h.tick();
        assert!(h.effects.iter().any(|e| matches!(e, Effect::Flit { .. })));
    }

    #[test]
    fn slow_link_spaces_flits_by_serialization_time() {
        let mut h = Harness::new();
        h.links[0].begin_rate_change(Picos::ZERO, Gbps::from_gbps(5.0), Picos::ZERO);
        for f in packet_to(NodeId(0), 2).into_flits() {
            h.router.accept_flit(PortId(1), VcId(0), f);
        }
        for _ in 0..10 {
            h.tick();
        }
        let departures: Vec<Picos> = h
            .effects
            .iter()
            .filter_map(|e| match e {
                Effect::Flit { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        assert_eq!(departures.len(), 2);
        // At 5 Gb/s a 16-bit flit takes 3200 ps = 2 cycles.
        assert_eq!(departures[1] - departures[0], Picos::from_ps(3200));
    }

    #[test]
    fn occupancy_accumulates() {
        let mut h = Harness::new();
        for f in packet_to(NodeId(0), 2).into_flits() {
            h.router.accept_flit(PortId(1), VcId(0), f);
        }
        h.tick();
        assert_eq!(h.router.inputs[1].take_occupancy_accum(), 2);
        assert_eq!(h.router.inputs[1].take_occupancy_accum(), 0);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_detected() {
        let mut h = Harness::new();
        let depth = h.config.depth_per_vc() as u16;
        h.router.return_credit(PortId(0), VcId(0), depth);
    }
}
