//! Processing nodes: traffic sources and sinks.
//!
//! Each board in a rack houses one processing node connected to the rack's
//! router by a pair of power-aware opto-electronic links (paper Fig. 4(a)).
//! The source side serializes queued packets onto the injection link,
//! respecting downstream credits; the sink side reassembles packets off the
//! ejection link, returns credits, and reports per-packet latency.

use crate::arbiter::RoundRobinArbiter;
use crate::flit::{Flit, Packet};
use crate::ids::{LinkId, NodeId, PacketId, VcId};
use crate::link::Link;
use crate::network::Effect;
use lumen_desim::Picos;
use serde::{Deserialize, Serialize, Value};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// A Fibonacci-multiplicative hasher for [`PacketId`] keys.
///
/// Packet ids are dense sequential integers, so the default SipHash is
/// pure overhead on the per-flit reassembly path; a single multiply
/// spreads them across buckets just as well and is deterministic across
/// runs (required for reproducibility — though nothing here iterates the
/// map in a result-affecting order anyway).
#[derive(Default)]
pub struct PacketIdHasher(u64);

impl Hasher for PacketIdHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type PacketMap<V> = HashMap<PacketId, V, BuildHasherDefault<PacketIdHasher>>;

/// The traffic-source half of a processing node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceNode {
    id: NodeId,
    inj_link: LinkId,
    queue: VecDeque<Flit>,
    credits: Vec<u16>,
    active_vc: Option<VcId>,
    vc_arbiter: RoundRobinArbiter,
    scratch_eligible: Vec<bool>,
    /// Packets handed to this source over its lifetime.
    pub packets_queued: u64,
    /// Flits that have left on the injection link.
    pub flits_injected: u64,
}

impl SourceNode {
    /// Creates a source wired to `inj_link`, with full initial credit for
    /// a downstream buffer of `vcs` VCs × `depth_per_vc` flits.
    pub fn new(id: NodeId, inj_link: LinkId, vcs: u8, depth_per_vc: u16) -> Self {
        SourceNode {
            id,
            inj_link,
            queue: VecDeque::new(),
            credits: vec![depth_per_vc; vcs as usize],
            active_vc: None,
            vc_arbiter: RoundRobinArbiter::new(vcs as usize),
            scratch_eligible: vec![false; vcs as usize],
            packets_queued: 0,
            flits_injected: 0,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The injection link this source drives.
    pub fn injection_link(&self) -> LinkId {
        self.inj_link
    }

    /// Queues a packet for injection.
    ///
    /// # Panics
    ///
    /// Panics if the packet's source is not this node.
    pub fn enqueue(&mut self, packet: Packet) {
        assert_eq!(packet.src, self.id, "packet source mismatch");
        self.packets_queued += 1;
        self.queue.extend(packet.into_flits());
    }

    /// Flits still waiting (source queue occupancy).
    pub fn backlog_flits(&self) -> usize {
        self.queue.len()
    }

    /// Current credit balance per VC (for the conservation auditor).
    pub fn credits(&self) -> &[u16] {
        &self.credits
    }

    /// Returns one credit for the downstream VC.
    pub fn return_credit(&mut self, vc: VcId, depth_per_vc: u16) {
        let c = &mut self.credits[vc.0 as usize];
        assert!(*c < depth_per_vc, "injection credit overflow at {}", self.id);
        *c += 1;
    }

    /// One core cycle: try to put the next queued flit on the injection
    /// link.
    pub fn tick(&mut self, now: Picos, links: &mut [Link], effects: &mut Vec<Effect>) {
        let Some(front) = self.queue.front() else {
            return;
        };
        links[self.inj_link.index()].note_demand();
        if self.active_vc.is_none() {
            debug_assert!(front.kind.is_head(), "source queue must start at a head flit");
            for (v, &c) in self.credits.iter().enumerate() {
                self.scratch_eligible[v] = c > 0;
            }
            let eligible = &self.scratch_eligible;
            match self.vc_arbiter.grant(|v| eligible[v]) {
                Some(v) => self.active_vc = Some(VcId(v as u8)),
                None => return,
            }
        }
        let vc = self.active_vc.expect("set above");
        if self.credits[vc.0 as usize] == 0 {
            return;
        }
        let link = &mut links[self.inj_link.index()];
        if !link.ready_at(now) {
            return;
        }
        let flit = self.queue.pop_front().expect("checked non-empty");
        self.credits[vc.0 as usize] -= 1;
        self.flits_injected += 1;
        let at = link.start_flit(now);
        effects.push(Effect::Flit {
            link: self.inj_link,
            vc,
            flit,
            at,
        });
        if flit.kind.is_tail() {
            self.active_vc = None;
        }
    }
}

/// Reassembly state for one packet mid-flight at a sink.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PartialPacket {
    /// Flits of the packet seen so far.
    seen: u32,
    /// Whether any flit of the packet arrived corrupted. Detection is
    /// end-to-end: the whole packet is dropped at the tail.
    poisoned: bool,
}

/// The traffic-sink half of a processing node.
#[derive(Debug, Clone)]
pub struct SinkNode {
    id: NodeId,
    ej_link: LinkId,
    in_flight: PacketMap<PartialPacket>,
    /// Packets fully received.
    pub packets_received: u64,
    /// Flits received.
    pub flits_received: u64,
    /// Flits of fully delivered (uncorrupted) packets.
    pub flits_delivered: u64,
    /// Packets discarded because a flit arrived corrupted.
    pub packets_dropped: u64,
    /// Flits belonging to discarded packets.
    pub flits_dropped: u64,
    /// Flits that arrived with the corruption flag set.
    pub flits_corrupted: u64,
}

impl SinkNode {
    /// Creates a sink fed by `ej_link`.
    pub fn new(id: NodeId, ej_link: LinkId) -> Self {
        SinkNode {
            id,
            ej_link,
            in_flight: PacketMap::default(),
            packets_received: 0,
            flits_received: 0,
            flits_delivered: 0,
            packets_dropped: 0,
            flits_dropped: 0,
            flits_corrupted: 0,
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The ejection link feeding this sink.
    pub fn ejection_link(&self) -> LinkId {
        self.ej_link
    }

    /// Accepts a flit off the ejection link: returns the credit upstream
    /// and, on the tail flit, either emits the packet-ejected effect
    /// carrying the end-to-end latency or — if any flit of the packet
    /// arrived corrupted — drops the packet with accounting (no effect).
    ///
    /// Corrupted flits still consume buffer slots and return credits:
    /// flow control cannot distinguish them, only the end-to-end check
    /// at reassembly can.
    ///
    /// # Panics
    ///
    /// Panics if the flit is misaddressed or packet reassembly is
    /// inconsistent (simulator invariant violations).
    pub fn receive(
        &mut self,
        now: Picos,
        vc: VcId,
        flit: Flit,
        credit_delay: Picos,
        effects: &mut Vec<Effect>,
    ) {
        assert_eq!(flit.dst, self.id, "misrouted flit {flit} at {}", self.id);
        self.flits_received += 1;
        if flit.corrupted {
            self.flits_corrupted += 1;
        }
        effects.push(Effect::Credit {
            link: self.ej_link,
            vc,
            at: now + credit_delay,
        });
        let partial = self.in_flight.entry(flit.packet).or_insert(PartialPacket {
            seen: 0,
            poisoned: false,
        });
        partial.seen += 1;
        partial.poisoned |= flit.corrupted;
        assert_eq!(
            partial.seen - 1,
            flit.seq,
            "out-of-order flit {flit} at {}",
            self.id
        );
        if flit.kind.is_tail() {
            let partial = self
                .in_flight
                .remove(&flit.packet)
                .expect("tail implies entry");
            assert_eq!(partial.seen, flit.size_flits, "short packet {flit}");
            if partial.poisoned {
                self.packets_dropped += 1;
                self.flits_dropped += u64::from(flit.size_flits);
            } else {
                self.packets_received += 1;
                self.flits_delivered += u64::from(flit.size_flits);
                effects.push(Effect::Ejected {
                    packet: flit.packet,
                    src: flit.src,
                    dst: flit.dst,
                    size_flits: flit.size_flits,
                    created_at: flit.created_at,
                    at: now,
                });
            }
        }
    }

    /// Packets currently mid-reassembly.
    pub fn partial_packets(&self) -> usize {
        self.in_flight.len()
    }

    /// Flits currently held in partially reassembled packets (for the
    /// conservation auditor).
    pub fn partial_flits(&self) -> u64 {
        self.in_flight.values().map(|p| u64::from(p.seen)).sum()
    }
}

// Hand-written: the vendored serde has no HashMap impl, and hash-map
// iteration order must not leak into serialized bytes anyway (checkpoints
// of identical states must be byte-identical). Mid-flight packets are
// emitted as a sequence sorted by packet id.
impl Serialize for SinkNode {
    fn serialize_value(&self) -> Value {
        let mut in_flight: Vec<(u64, &PartialPacket)> =
            self.in_flight.iter().map(|(k, v)| (k.0, v)).collect();
        in_flight.sort_unstable_by_key(|&(id, _)| id);
        let in_flight = Value::Seq(
            in_flight
                .into_iter()
                .map(|(id, p)| (id, p.seen, p.poisoned).serialize_value())
                .collect(),
        );
        Value::Map(vec![
            ("id".into(), self.id.serialize_value()),
            ("ej_link".into(), self.ej_link.serialize_value()),
            ("in_flight".into(), in_flight),
            (
                "packets_received".into(),
                self.packets_received.serialize_value(),
            ),
            ("flits_received".into(), self.flits_received.serialize_value()),
            (
                "flits_delivered".into(),
                self.flits_delivered.serialize_value(),
            ),
            (
                "packets_dropped".into(),
                self.packets_dropped.serialize_value(),
            ),
            ("flits_dropped".into(), self.flits_dropped.serialize_value()),
            (
                "flits_corrupted".into(),
                self.flits_corrupted.serialize_value(),
            ),
        ])
    }
}

impl Deserialize for SinkNode {
    fn deserialize_value(v: &Value) -> Result<Self, serde::Error> {
        let map = v
            .as_map()
            .ok_or_else(|| serde::Error::expected("map", "SinkNode"))?;
        let field = |name: &str| serde::map_field(map, name, "SinkNode");
        let entries: Vec<(u64, u32, bool)> = Vec::deserialize_value(field("in_flight")?)?;
        let mut in_flight = PacketMap::default();
        for (id, seen, poisoned) in entries {
            in_flight.insert(PacketId(id), PartialPacket { seen, poisoned });
        }
        Ok(SinkNode {
            id: NodeId::deserialize_value(field("id")?)?,
            ej_link: LinkId::deserialize_value(field("ej_link")?)?,
            in_flight,
            packets_received: u64::deserialize_value(field("packets_received")?)?,
            flits_received: u64::deserialize_value(field("flits_received")?)?,
            flits_delivered: u64::deserialize_value(field("flits_delivered")?)?,
            packets_dropped: u64::deserialize_value(field("packets_dropped")?)?,
            flits_dropped: u64::deserialize_value(field("flits_dropped")?)?,
            flits_corrupted: u64::deserialize_value(field("flits_corrupted")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{Endpoint, LinkKind};
    use lumen_opto::Gbps;

    fn inj_link() -> Link {
        Link::new(
            LinkId(0),
            LinkKind::Injection,
            Endpoint::Node(NodeId(0)),
            Endpoint::RouterPort {
                router: crate::ids::RouterId(0),
                port: crate::ids::PortId(0),
            },
            16,
            Picos::from_ps(1600),
            Gbps::from_gbps(10.0),
        )
    }

    fn pkt(id: u64, size: u32) -> Packet {
        Packet::new(PacketId(id), NodeId(0), NodeId(1), size, Picos::ZERO)
    }

    #[test]
    fn source_injects_at_link_rate() {
        let mut src = SourceNode::new(NodeId(0), LinkId(0), 1, 8);
        let mut links = vec![inj_link()];
        let mut effects = Vec::new();
        src.enqueue(pkt(1, 3));
        assert_eq!(src.backlog_flits(), 3);
        let cycle = Picos::from_ps(1600);
        let mut now = Picos::ZERO;
        for _ in 0..5 {
            src.tick(now, &mut links, &mut effects);
            now += cycle;
        }
        assert_eq!(src.flits_injected, 3);
        assert_eq!(src.backlog_flits(), 0);
        assert_eq!(effects.len(), 3);
    }

    #[test]
    fn source_blocks_without_credits() {
        let mut src = SourceNode::new(NodeId(0), LinkId(0), 1, 2);
        let mut links = vec![inj_link()];
        let mut effects = Vec::new();
        src.enqueue(pkt(1, 5));
        let cycle = Picos::from_ps(1600);
        let mut now = Picos::ZERO;
        for _ in 0..10 {
            src.tick(now, &mut links, &mut effects);
            now += cycle;
        }
        assert_eq!(src.flits_injected, 2); // only 2 credits available
        src.return_credit(VcId(0), 2);
        src.tick(now, &mut links, &mut effects);
        assert_eq!(src.flits_injected, 3);
    }

    #[test]
    fn source_respects_slow_link() {
        let mut src = SourceNode::new(NodeId(0), LinkId(0), 1, 8);
        let mut links = vec![inj_link()];
        links[0].begin_rate_change(Picos::ZERO, Gbps::from_gbps(5.0), Picos::ZERO);
        let mut effects = Vec::new();
        src.enqueue(pkt(1, 2));
        let cycle = Picos::from_ps(1600);
        let mut now = Picos::ZERO;
        for _ in 0..2 {
            src.tick(now, &mut links, &mut effects);
            now += cycle;
        }
        // Second flit cannot start at cycle 1: link busy until 3200 ps.
        assert_eq!(src.flits_injected, 1);
        src.tick(now, &mut links, &mut effects);
        assert_eq!(src.flits_injected, 2);
    }

    #[test]
    fn sink_reassembles_and_reports_latency() {
        let mut sink = SinkNode::new(NodeId(1), LinkId(3));
        let mut effects = Vec::new();
        let p = Packet::new(PacketId(7), NodeId(0), NodeId(1), 3, Picos::from_ns(10));
        let arrival_base = Picos::from_ns(100);
        for (i, f) in p.into_flits().enumerate() {
            sink.receive(
                arrival_base + Picos::from_ns(i as u64),
                VcId(0),
                f,
                Picos::from_ps(1600),
                &mut effects,
            );
        }
        assert_eq!(sink.packets_received, 1);
        assert_eq!(sink.flits_received, 3);
        assert_eq!(sink.partial_packets(), 0);
        let ejected: Vec<&Effect> = effects
            .iter()
            .filter(|e| matches!(e, Effect::Ejected { .. }))
            .collect();
        assert_eq!(ejected.len(), 1);
        if let Effect::Ejected { at, created_at, .. } = ejected[0] {
            assert_eq!(*at, Picos::from_ns(102));
            assert_eq!(*created_at, Picos::from_ns(10));
        }
        // One credit per flit.
        let credits = effects
            .iter()
            .filter(|e| matches!(e, Effect::Credit { .. }))
            .count();
        assert_eq!(credits, 3);
    }

    #[test]
    fn sink_drops_poisoned_packet_with_accounting() {
        let mut sink = SinkNode::new(NodeId(1), LinkId(3));
        let mut effects = Vec::new();
        let p = Packet::new(PacketId(9), NodeId(0), NodeId(1), 3, Picos::ZERO);
        for (i, mut f) in p.into_flits().enumerate() {
            if i == 1 {
                f.corrupted = true;
            }
            sink.receive(
                Picos::from_ns(i as u64),
                VcId(0),
                f,
                Picos::from_ps(1600),
                &mut effects,
            );
        }
        assert_eq!(sink.packets_received, 0);
        assert_eq!(sink.packets_dropped, 1);
        assert_eq!(sink.flits_dropped, 3);
        assert_eq!(sink.flits_corrupted, 1);
        assert_eq!(sink.flits_received, 3);
        assert_eq!(sink.flits_delivered, 0);
        assert_eq!(sink.partial_packets(), 0);
        assert_eq!(sink.partial_flits(), 0);
        // Credits still flow for every flit, but no packet is ejected.
        let credits = effects
            .iter()
            .filter(|e| matches!(e, Effect::Credit { .. }))
            .count();
        assert_eq!(credits, 3);
        assert!(!effects.iter().any(|e| matches!(e, Effect::Ejected { .. })));
    }

    #[test]
    #[should_panic(expected = "misrouted")]
    fn sink_rejects_misaddressed_flit() {
        let mut sink = SinkNode::new(NodeId(2), LinkId(3));
        let mut effects = Vec::new();
        let p = pkt(1, 1); // addressed to node 1
        for f in p.into_flits() {
            sink.receive(Picos::ZERO, VcId(0), f, Picos::ZERO, &mut effects);
        }
    }

    #[test]
    #[should_panic(expected = "packet source mismatch")]
    fn source_rejects_foreign_packet() {
        let mut src = SourceNode::new(NodeId(3), LinkId(0), 1, 8);
        src.enqueue(pkt(1, 1)); // src is node 0
    }
}
