//! Round-robin arbitration.

use serde::{Deserialize, Serialize};

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// The requester immediately after the previous winner has highest
/// priority, guaranteeing starvation freedom when every requester is
/// eventually served.
///
/// # Example
///
/// ```
/// use lumen_noc::arbiter::RoundRobinArbiter;
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(|i| i != 1), Some(0));
/// assert_eq!(arb.grant(|_| true), Some(1)); // rotates past the winner
/// assert_eq!(arb.grant(|_| true), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { n, next: 0 }
    }

    /// Grants to the highest-priority requester for which `requesting`
    /// returns true, advancing the priority pointer past the winner.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for offset in 0..self.n {
            let i = (self.next + offset) % self.n;
            if requesting(i) {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter covers zero requesters (never true by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_in_rotation() {
        let mut arb = RoundRobinArbiter::new(4);
        let winners: Vec<usize> = (0..8).map(|_| arb.grant(|_| true).unwrap()).collect();
        assert_eq!(winners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_non_requesters() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(|i| i == 2), Some(2));
        // priority now starts at 3
        assert_eq!(arb.grant(|i| i == 0 || i == 3), Some(3));
        assert_eq!(arb.grant(|i| i == 0 || i == 3), Some(0));
    }

    #[test]
    fn no_requesters_no_grant() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.grant(|_| false), None);
        // pointer unchanged: next grant still starts at 0
        assert_eq!(arb.grant(|_| true), Some(0));
    }

    #[test]
    fn fairness_under_full_load() {
        let mut arb = RoundRobinArbiter::new(5);
        let mut counts = [0u32; 5];
        for _ in 0..500 {
            counts[arb.grant(|_| true).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn starvation_freedom_with_persistent_contender() {
        // Requester 0 always requests; requester 1 requests always too.
        // Both must be served in alternation.
        let mut arb = RoundRobinArbiter::new(2);
        let w: Vec<usize> = (0..6).map(|_| arb.grant(|_| true).unwrap()).collect();
        assert_eq!(w, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_requesters_rejected() {
        let _ = RoundRobinArbiter::new(0);
    }
}
