//! Round-robin arbitration.

use serde::{Deserialize, Serialize};

/// A rotating-priority (round-robin) arbiter over `n` requesters.
///
/// The requester immediately after the previous winner has highest
/// priority, guaranteeing starvation freedom when every requester is
/// eventually served.
///
/// # Example
///
/// ```
/// use lumen_noc::arbiter::RoundRobinArbiter;
/// let mut arb = RoundRobinArbiter::new(3);
/// assert_eq!(arb.grant(|i| i != 1), Some(0));
/// assert_eq!(arb.grant(|_| true), Some(1)); // rotates past the winner
/// assert_eq!(arb.grant(|_| true), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    n: usize,
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter over `n` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { n, next: 0 }
    }

    /// Grants to the highest-priority requester for which `requesting`
    /// returns true, advancing the priority pointer past the winner.
    ///
    /// Two straight-line passes (`next..n`, then `0..next`) instead of a
    /// modulo per probe: this runs once per output port per router cycle,
    /// over `ports × vcs` requesters, so the integer division was a
    /// measurable slice of the whole simulation.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        for i in self.next..self.n {
            if requesting(i) {
                self.next = if i + 1 == self.n { 0 } else { i + 1 };
                return Some(i);
            }
        }
        for i in 0..self.next {
            if requesting(i) {
                self.next = i + 1; // i < next <= n, so no wrap needed
                return Some(i);
            }
        }
        None
    }

    /// Grants to the highest-priority requester whose bit is set in
    /// `mask` (bit `i` = requester `i`), advancing the priority pointer
    /// past the winner. Behaviorally identical to [`grant`] with a
    /// `requesting` closure that tests the same set: the winner is the
    /// first set bit at or after `next`, wrapping to the lowest set bit.
    ///
    /// Requires `n <= 64`; callers must not set bits at or above `n`.
    /// Replaces the per-requester closure probe on the router's critical
    /// path (switch and VC allocation) with two shifts and a
    /// trailing-zeros count.
    ///
    /// [`grant`]: RoundRobinArbiter::grant
    pub fn grant_masked(&mut self, mask: u64) -> Option<usize> {
        debug_assert!(self.n <= 64, "grant_masked needs n <= 64");
        debug_assert_eq!(mask >> self.n, 0, "mask bit set at or above n");
        if mask == 0 {
            return None;
        }
        // `next` stays in 0..n (see `grant`), so the shift never overflows.
        let high = mask >> self.next;
        let winner = if high != 0 {
            self.next + high.trailing_zeros() as usize
        } else {
            mask.trailing_zeros() as usize
        };
        self.next = if winner + 1 == self.n { 0 } else { winner + 1 };
        Some(winner)
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter covers zero requesters (never true by
    /// construction; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_in_rotation() {
        let mut arb = RoundRobinArbiter::new(4);
        let winners: Vec<usize> = (0..8).map(|_| arb.grant(|_| true).unwrap()).collect();
        assert_eq!(winners, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_non_requesters() {
        let mut arb = RoundRobinArbiter::new(4);
        assert_eq!(arb.grant(|i| i == 2), Some(2));
        // priority now starts at 3
        assert_eq!(arb.grant(|i| i == 0 || i == 3), Some(3));
        assert_eq!(arb.grant(|i| i == 0 || i == 3), Some(0));
    }

    #[test]
    fn no_requesters_no_grant() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.grant(|_| false), None);
        // pointer unchanged: next grant still starts at 0
        assert_eq!(arb.grant(|_| true), Some(0));
    }

    #[test]
    fn fairness_under_full_load() {
        let mut arb = RoundRobinArbiter::new(5);
        let mut counts = [0u32; 5];
        for _ in 0..500 {
            counts[arb.grant(|_| true).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    fn starvation_freedom_with_persistent_contender() {
        // Requester 0 always requests; requester 1 requests always too.
        // Both must be served in alternation.
        let mut arb = RoundRobinArbiter::new(2);
        let w: Vec<usize> = (0..6).map(|_| arb.grant(|_| true).unwrap()).collect();
        assert_eq!(w, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_requesters_rejected() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    fn masked_matches_closure_grant() {
        // Drive two arbiters through the same request sequence, one via
        // the closure API and one via the mask API: every grant and the
        // internal rotation must agree.
        let n = 7;
        let mut a = RoundRobinArbiter::new(n);
        let mut b = RoundRobinArbiter::new(n);
        let mut lcg: u64 = 0x2545F4914F6CDD1D;
        for _ in 0..1000 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let mask = (lcg >> 33) & ((1 << n) - 1);
            let ga = a.grant(|i| mask >> i & 1 == 1);
            let gb = b.grant_masked(mask);
            assert_eq!(ga, gb, "mask {mask:#b}");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn masked_no_requesters_no_grant() {
        let mut arb = RoundRobinArbiter::new(3);
        assert_eq!(arb.grant_masked(0), None);
        assert_eq!(arb.grant_masked(0b111), Some(0));
        assert_eq!(arb.grant_masked(0b001), Some(0));
        assert_eq!(arb.grant_masked(0b011), Some(1));
    }
}
