//! Input buffers with per-VC FIFO queues.

use crate::flit::Flit;
use crate::ids::VcId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One router input port's buffering: a fixed-capacity FIFO per virtual
/// channel. Capacity is enforced — an overflow indicates a credit
/// accounting bug upstream, so it panics rather than dropping flits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputBuffer {
    queues: Vec<VecDeque<Flit>>,
    depth_per_vc: usize,
    // Flits across all VCs, kept in sync by push/pop so the per-cycle
    // occupancy statistic is O(1) instead of a walk over every VC.
    occupancy: usize,
}

impl InputBuffer {
    /// Creates a buffer with `vcs` virtual channels of `depth_per_vc` flits
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `vcs` or `depth_per_vc` is zero.
    pub fn new(vcs: u8, depth_per_vc: u16) -> Self {
        assert!(vcs >= 1, "need at least one VC");
        assert!(depth_per_vc >= 1, "VC depth must be positive");
        InputBuffer {
            queues: (0..vcs)
                .map(|_| VecDeque::with_capacity(depth_per_vc as usize))
                .collect(),
            depth_per_vc: depth_per_vc as usize,
            occupancy: 0,
        }
    }

    /// Number of virtual channels.
    pub fn vcs(&self) -> u8 {
        self.queues.len() as u8
    }

    /// Capacity per VC, in flits.
    pub fn depth_per_vc(&self) -> usize {
        self.depth_per_vc
    }

    /// Pushes a flit into a VC.
    ///
    /// # Panics
    ///
    /// Panics if the VC is full (credit protocol violation) or the VC index
    /// is out of range.
    pub fn push(&mut self, vc: VcId, flit: Flit) {
        let q = &mut self.queues[vc.0 as usize];
        assert!(
            q.len() < self.depth_per_vc,
            "buffer overflow on {vc}: credit protocol violated"
        );
        q.push_back(flit);
        self.occupancy += 1;
    }

    /// The head-of-line flit of a VC, if any.
    pub fn front(&self, vc: VcId) -> Option<&Flit> {
        self.queues[vc.0 as usize].front()
    }

    /// Pops the head-of-line flit of a VC.
    pub fn pop(&mut self, vc: VcId) -> Option<Flit> {
        let f = self.queues[vc.0 as usize].pop_front();
        self.occupancy -= f.is_some() as usize;
        f
    }

    /// Occupancy of one VC, in flits.
    pub fn len(&self, vc: VcId) -> usize {
        self.queues[vc.0 as usize].len()
    }

    /// Whether one VC is empty.
    pub fn is_empty(&self, vc: VcId) -> bool {
        self.queues[vc.0 as usize].is_empty()
    }

    /// Total occupancy across all VCs, in flits (the `F(t)` of the paper's
    /// buffer-utilization statistic, Eq. 10).
    pub fn total_occupancy(&self) -> usize {
        debug_assert_eq!(
            self.occupancy,
            self.queues.iter().map(VecDeque::len).sum::<usize>()
        );
        self.occupancy
    }

    /// Total capacity across all VCs, in flits (the `B` of Eq. 10).
    pub fn total_capacity(&self) -> usize {
        self.depth_per_vc * self.queues.len()
    }

    /// Free slots in one VC.
    pub fn free_slots(&self, vc: VcId) -> usize {
        self.depth_per_vc - self.queues[vc.0 as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, PacketId};
    use crate::flit::{FlitKind, Packet};
    use lumen_desim::Picos;

    fn flit(seq: u32) -> Flit {
        Packet::new(PacketId(1), NodeId(0), NodeId(1), 8, Picos::ZERO)
            .into_flits()
            .nth(seq as usize)
            .unwrap()
    }

    #[test]
    fn fifo_order() {
        let mut b = InputBuffer::new(1, 4);
        b.push(VcId(0), flit(0));
        b.push(VcId(0), flit(1));
        assert_eq!(b.len(VcId(0)), 2);
        assert_eq!(b.front(VcId(0)).unwrap().seq, 0);
        assert_eq!(b.pop(VcId(0)).unwrap().seq, 0);
        assert_eq!(b.pop(VcId(0)).unwrap().seq, 1);
        assert!(b.pop(VcId(0)).is_none());
    }

    #[test]
    fn per_vc_isolation() {
        let mut b = InputBuffer::new(2, 2);
        b.push(VcId(0), flit(0));
        b.push(VcId(1), flit(1));
        assert_eq!(b.len(VcId(0)), 1);
        assert_eq!(b.len(VcId(1)), 1);
        assert_eq!(b.total_occupancy(), 2);
        assert_eq!(b.total_capacity(), 4);
        assert_eq!(b.pop(VcId(1)).unwrap().seq, 1);
        assert!(b.is_empty(VcId(1)));
        assert!(!b.is_empty(VcId(0)));
    }

    #[test]
    fn free_slots_track_occupancy() {
        let mut b = InputBuffer::new(1, 3);
        assert_eq!(b.free_slots(VcId(0)), 3);
        b.push(VcId(0), flit(0));
        assert_eq!(b.free_slots(VcId(0)), 2);
        b.pop(VcId(0));
        assert_eq!(b.free_slots(VcId(0)), 3);
    }

    #[test]
    #[should_panic(expected = "credit protocol violated")]
    fn overflow_panics() {
        let mut b = InputBuffer::new(1, 1);
        b.push(VcId(0), flit(0));
        b.push(VcId(0), flit(1));
    }

    #[test]
    fn kind_structure_preserved() {
        let mut b = InputBuffer::new(1, 8);
        for f in Packet::new(PacketId(2), NodeId(0), NodeId(1), 3, Picos::ZERO).into_flits() {
            b.push(VcId(0), f);
        }
        assert_eq!(b.pop(VcId(0)).unwrap().kind, FlitKind::Head);
        assert_eq!(b.pop(VcId(0)).unwrap().kind, FlitKind::Body);
        assert_eq!(b.pop(VcId(0)).unwrap().kind, FlitKind::Tail);
    }
}
