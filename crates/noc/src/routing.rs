//! Routing functions.
//!
//! The paper's mesh uses deterministic dimension-order routing: packets
//! travel fully along X, then along Y, then exit through the destination
//! node's local ejection port. Dimension order is provably deadlock-free on
//! meshes with wormhole flow control and a single virtual channel.
//!
//! The geometric step — which inter-router port makes minimal progress —
//! is delegated to the configuration's [`Topology`] implementation, so
//! these entry points work unchanged on meshes, tori, and folded-Clos
//! fabrics (see [`crate::topology`]).

use crate::config::NocConfig;
use crate::ids::{Direction, NodeId, PortId, RouterId};
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// The routing discipline for the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RoutingAlgorithm {
    /// X first, then Y (the paper's choice).
    #[default]
    XY,
    /// Y first, then X (used in tests to cross-check path independence).
    YX,
    /// West-first partially-adaptive routing (Glass & Ni turn model): all
    /// westward hops are taken first and deterministically; afterwards the
    /// router may choose adaptively among the remaining minimal
    /// directions. Deadlock-free on meshes with wormhole flow control.
    /// The paper's related work (its ref. \[25\]) studies exactly this
    /// adaptivity axis under bursty traffic.
    WestFirst,
}

impl RoutingAlgorithm {
    /// Whether route selection ever reads dynamic router state (free VCs,
    /// credit counts). Deterministic algorithms pick from geometry alone,
    /// which lets the sharded backend stretch barrier windows on credit
    /// *eligibility* bounds; adaptive ones need exact credit counts every
    /// cycle, so windows only stretch when boundary links are fully idle.
    pub fn is_adaptive(self) -> bool {
        matches!(self, RoutingAlgorithm::WestFirst)
    }
}

/// Port index of a mesh direction: local ports come first, then N/S/E/W.
pub fn direction_port(config: &NocConfig, dir: Direction) -> PortId {
    PortId(config.nodes_per_rack + dir.index() as u8)
}

/// The mesh direction of a port, if it is an inter-router port of a mesh
/// or torus fabric. Folded-Clos up/down ports have no compass meaning,
/// so this returns `None` for every port there.
pub fn port_direction(config: &NocConfig, port: PortId) -> Option<Direction> {
    if matches!(
        config.topology,
        crate::topology::TopologyKind::FoldedClos { .. }
    ) {
        return None;
    }
    let base = config.nodes_per_rack;
    if port.0 >= base && port.0 < base + 4 {
        Some(Direction::ALL[(port.0 - base) as usize])
    } else {
        None
    }
}

/// Appends every permitted minimal output port for a packet at `here`
/// addressed to `dst` into `out` (cleared first). Deterministic
/// algorithms yield exactly one candidate; `WestFirst` may yield up to
/// three on a mesh. At the destination rack, the single candidate is the
/// ejection port; everywhere else the candidates come from the
/// configuration's [`Topology`].
///
/// ```
/// use lumen_noc::ids::{NodeId, PortId, RouterId};
/// use lumen_noc::routing::{route_candidates, RoutingAlgorithm};
/// use lumen_noc::NocConfig;
///
/// let config = NocConfig::paper_default(); // 8×8 mesh, 8 nodes/rack
/// let mut out = Vec::new();
/// // Node 348 lives in rack (3,5) = router 43. From router 0, XY
/// // routing goes East: port 10, since ports 8..=11 are N/S/E/W.
/// route_candidates(&config, RoutingAlgorithm::XY, RouterId(0), NodeId(348), &mut out);
/// assert_eq!(out, vec![PortId(10)]);
/// // At the destination rack the only candidate is the ejection port.
/// route_candidates(&config, RoutingAlgorithm::XY, RouterId(43), NodeId(348), &mut out);
/// assert_eq!(out, vec![PortId(4)]);
/// ```
pub fn route_candidates(
    config: &NocConfig,
    algo: RoutingAlgorithm,
    here: RouterId,
    dst: NodeId,
    out: &mut Vec<PortId>,
) {
    out.clear();
    let dst_router = config.router_of_node(dst);
    if here == dst_router {
        out.push(PortId(config.local_index(dst)));
        return;
    }
    config.topo().route_inter(algo, here, dst_router, out);
    debug_assert!(!out.is_empty(), "no route from {here} to {dst}");
}

/// Computes the output port at `here` for a packet addressed to `dst`.
///
/// Returns the destination's local ejection port once the packet has
/// reached its destination rack. For adaptive algorithms this returns
/// the first (most deterministic) candidate; adaptive selection happens
/// in the router via [`route_candidates`].
pub fn route(config: &NocConfig, algo: RoutingAlgorithm, here: RouterId, dst: NodeId) -> PortId {
    // A thread-local scratch keeps this allocation-free per call (traffic
    // patterns and tests loop over it; the router hot path uses the
    // precomputed table in `crate::route_table` instead).
    std::thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<PortId>> =
            std::cell::RefCell::new(Vec::with_capacity(crate::route_table::MAX_ROUTE_CANDIDATES));
    }
    SCRATCH.with(|scratch| {
        let mut candidates = scratch.borrow_mut();
        route_candidates(config, algo, here, dst, &mut candidates);
        candidates[0]
    })
}

/// Number of router-to-router hops of a minimal path (on the mesh, the
/// Manhattan distance between the racks; wrap-aware on tori, up/down
/// depth on the folded Clos).
pub fn hop_count(config: &NocConfig, src: NodeId, dst: NodeId) -> u32 {
    config
        .topo()
        .min_hops(config.router_of_node(src), config.router_of_node(dst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{RackCoord, RouterId};

    fn cfg() -> NocConfig {
        NocConfig::paper_default()
    }

    #[test]
    fn direction_ports_follow_locals() {
        let c = cfg();
        assert_eq!(direction_port(&c, Direction::North), PortId(8));
        assert_eq!(direction_port(&c, Direction::South), PortId(9));
        assert_eq!(direction_port(&c, Direction::East), PortId(10));
        assert_eq!(direction_port(&c, Direction::West), PortId(11));
        assert_eq!(port_direction(&c, PortId(8)), Some(Direction::North));
        assert_eq!(port_direction(&c, PortId(11)), Some(Direction::West));
        assert_eq!(port_direction(&c, PortId(0)), None);
        assert_eq!(port_direction(&c, PortId(12)), None);
    }

    #[test]
    fn xy_goes_x_first() {
        let c = cfg();
        let here = c.router_at(RackCoord::new(1, 1));
        // Destination two columns east, one row south.
        let dst = c.node_at(c.router_at(RackCoord::new(3, 2)), 0);
        assert_eq!(route(&c, RoutingAlgorithm::XY, here, dst), direction_port(&c, Direction::East));
        // After X is resolved, go south.
        let aligned = c.router_at(RackCoord::new(3, 1));
        assert_eq!(
            route(&c, RoutingAlgorithm::XY, aligned, dst),
            direction_port(&c, Direction::South)
        );
    }

    #[test]
    fn yx_goes_y_first() {
        let c = cfg();
        let here = c.router_at(RackCoord::new(1, 1));
        let dst = c.node_at(c.router_at(RackCoord::new(3, 2)), 0);
        assert_eq!(route(&c, RoutingAlgorithm::YX, here, dst), direction_port(&c, Direction::South));
    }

    #[test]
    fn at_destination_uses_local_port() {
        let c = cfg();
        let r = c.router_at(RackCoord::new(3, 5));
        let dst = c.node_at(r, 4);
        assert_eq!(route(&c, RoutingAlgorithm::XY, r, dst), PortId(4));
        assert_eq!(route(&c, RoutingAlgorithm::YX, r, dst), PortId(4));
    }

    #[test]
    fn route_always_progresses() {
        // Following XY routing from any router must reach the destination
        // in exactly manhattan-distance hops.
        let c = cfg();
        let dst = c.node_at(c.router_at(RackCoord::new(6, 2)), 3);
        for start in 0..c.rack_count() {
            let mut here = RouterId(start as u32);
            let mut hops = 0;
            loop {
                let port = route(&c, RoutingAlgorithm::XY, here, dst);
                match port_direction(&c, port) {
                    None => break, // ejection port: arrived
                    Some(dir) => {
                        let next = c
                            .coord_of(here)
                            .neighbor(dir, c.width, c.height)
                            .expect("route must stay in mesh");
                        here = c.router_at(next);
                        hops += 1;
                        assert!(hops <= 14, "routing loop from r{start}");
                    }
                }
            }
            assert_eq!(here, c.router_of_node(dst));
            let src_node = c.node_at(RouterId(start as u32), 0);
            assert_eq!(hops, hop_count(&c, src_node, dst), "from r{start}");
        }
    }

    #[test]
    fn west_first_goes_west_first() {
        let c = cfg();
        let here = c.router_at(RackCoord::new(5, 3));
        // Destination to the north-west: west is mandatory and exclusive.
        let dst = c.node_at(c.router_at(RackCoord::new(2, 1)), 0);
        let mut cands = Vec::new();
        route_candidates(&c, RoutingAlgorithm::WestFirst, here, dst, &mut cands);
        assert_eq!(cands, vec![direction_port(&c, Direction::West)]);
    }

    #[test]
    fn west_first_adapts_east_and_south() {
        let c = cfg();
        let here = c.router_at(RackCoord::new(1, 1));
        let dst = c.node_at(c.router_at(RackCoord::new(3, 4)), 0);
        let mut cands = Vec::new();
        route_candidates(&c, RoutingAlgorithm::WestFirst, here, dst, &mut cands);
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&direction_port(&c, Direction::East)));
        assert!(cands.contains(&direction_port(&c, Direction::South)));
    }

    #[test]
    fn west_first_candidates_all_minimal() {
        // Every candidate strictly reduces Manhattan distance.
        let c = cfg();
        let mut cands = Vec::new();
        for here in 0..c.rack_count() {
            let here = RouterId(here as u32);
            for dst_r in 0..c.rack_count() {
                let dst = c.node_at(RouterId(dst_r as u32), 0);
                route_candidates(&c, RoutingAlgorithm::WestFirst, here, dst, &mut cands);
                assert!(!cands.is_empty());
                let d0 = c.coord_of(here).manhattan(c.coord_of(RouterId(dst_r as u32)));
                for &p in &cands {
                    match port_direction(&c, p) {
                        None => assert_eq!(d0, 0),
                        Some(dir) => {
                            let next = c
                                .coord_of(here)
                                .neighbor(dir, c.width, c.height)
                                .expect("candidate must stay in mesh");
                            let d1 = next.manhattan(c.coord_of(RouterId(dst_r as u32)));
                            assert_eq!(d1 + 1, d0, "{here}->{dst} via {dir}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn west_first_never_turns_to_west() {
        // The turn-model invariant: west only appears when ALL remaining
        // hops are west (candidate set == {West}).
        let c = cfg();
        let mut cands = Vec::new();
        for here in 0..c.rack_count() {
            for dst_r in 0..c.rack_count() {
                let dst = c.node_at(RouterId(dst_r as u32), 0);
                route_candidates(&c, RoutingAlgorithm::WestFirst, RouterId(here as u32), dst, &mut cands);
                let west = direction_port(&c, Direction::West);
                if cands.contains(&west) {
                    assert_eq!(cands.len(), 1, "west must be exclusive");
                }
            }
        }
    }

    #[test]
    fn deterministic_algorithms_have_single_candidate() {
        let c = cfg();
        let mut cands = Vec::new();
        let dst = c.node_at(c.router_at(RackCoord::new(6, 6)), 2);
        for algo in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
            route_candidates(&c, algo, RouterId(0), dst, &mut cands);
            assert_eq!(cands.len(), 1);
            assert_eq!(cands[0], route(&c, algo, RouterId(0), dst));
        }
    }

    #[test]
    fn hop_count_symmetric() {
        let c = cfg();
        let a = c.node_at(c.router_at(RackCoord::new(0, 0)), 0);
        let b = c.node_at(c.router_at(RackCoord::new(7, 7)), 5);
        assert_eq!(hop_count(&c, a, b), 14);
        assert_eq!(hop_count(&c, b, a), 14);
        // Same rack: zero inter-router hops.
        let a2 = c.node_at(c.router_at(RackCoord::new(0, 0)), 1);
        assert_eq!(hop_count(&c, a, a2), 0);
    }
}
