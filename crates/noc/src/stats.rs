//! Network observability snapshots.
//!
//! Aggregated views over link and router state, used by the experiment
//! harnesses and examples to report *where* the network is spending its
//! bandwidth and its power budget (e.g. the paper's observation that
//! injection/ejection links stay lowly utilized under uniform traffic
//! while mesh links saturate).

use crate::link::LinkKind;
use crate::network::Network;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics for one class of links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkClassStats {
    /// Number of links in the class.
    pub count: usize,
    /// Mean current bit rate, Gb/s.
    pub mean_rate_gbps: f64,
    /// Minimum current bit rate, Gb/s.
    pub min_rate_gbps: f64,
    /// Maximum current bit rate, Gb/s.
    pub max_rate_gbps: f64,
    /// Total flits carried over the class's lifetime.
    pub flits_sent: u64,
    /// Total bit-rate changes over the class's lifetime.
    pub rate_changes: u64,
}

impl fmt::Display for LinkClassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} links @ {:.2} Gb/s avg ({:.1}–{:.1}), {} flits, {} rate changes",
            self.count,
            self.mean_rate_gbps,
            self.min_rate_gbps,
            self.max_rate_gbps,
            self.flits_sent,
            self.rate_changes
        )
    }
}

/// A point-in-time aggregate view of the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkSnapshot {
    /// Inter-router (mesh) links.
    pub mesh: LinkClassStats,
    /// Node-to-router injection links.
    pub injection: LinkClassStats,
    /// Router-to-node ejection links.
    pub ejection: LinkClassStats,
    /// Total flits switched by all routers.
    pub flits_switched: u64,
    /// Flits waiting in source queues.
    pub source_backlog: usize,
    /// Packets fully delivered.
    pub packets_delivered: u64,
    /// Packets dropped at sinks after end-to-end corruption detection.
    pub packets_dropped: u64,
    /// Flits belonging to dropped packets.
    pub flits_dropped: u64,
    /// Flits that arrived at sinks with the corruption flag set.
    pub flits_corrupted: u64,
}

impl NetworkSnapshot {
    /// Takes a snapshot of `net`.
    pub fn take(net: &Network) -> NetworkSnapshot {
        let class = |kind: LinkKind| {
            let mut count = 0usize;
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            let mut max: f64 = 0.0;
            let mut flits = 0u64;
            let mut changes = 0u64;
            for l in net.links().filter(|l| l.kind() == kind) {
                let r = l.rate().as_gbps();
                count += 1;
                sum += r;
                min = min.min(r);
                max = max.max(r);
                flits += l.flits_sent();
                changes += l.rate_changes();
            }
            LinkClassStats {
                count,
                mean_rate_gbps: if count == 0 { 0.0 } else { sum / count as f64 },
                min_rate_gbps: if count == 0 { 0.0 } else { min },
                max_rate_gbps: max,
                flits_sent: flits,
                rate_changes: changes,
            }
        };
        let flits_switched = (0..net.router_count())
            .map(|r| net.router(crate::ids::RouterId(r as u32)).flits_switched)
            .sum();
        NetworkSnapshot {
            mesh: class(LinkKind::InterRouter),
            injection: class(LinkKind::Injection),
            ejection: class(LinkKind::Ejection),
            flits_switched,
            source_backlog: net.source_backlog(),
            packets_delivered: net.packets_delivered(),
            packets_dropped: net.packets_dropped(),
            flits_dropped: net.flits_dropped(),
            flits_corrupted: net.flits_corrupted(),
        }
    }
}

impl fmt::Display for NetworkSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "mesh:      {}", self.mesh)?;
        writeln!(f, "injection: {}", self.injection)?;
        writeln!(f, "ejection:  {}", self.ejection)?;
        write!(
            f,
            "{} flits switched, {} backlogged, {} packets delivered, \
             {} dropped ({} corrupted flits)",
            self.flits_switched,
            self.source_backlog,
            self.packets_delivered,
            self.packets_dropped,
            self.flits_corrupted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::flit::Packet;
    use crate::ids::{LinkId, NodeId, PacketId};
    use lumen_desim::Picos;
    use lumen_opto::Gbps;

    #[test]
    fn snapshot_of_fresh_network() {
        let net = Network::new(&NocConfig::paper_default());
        let snap = NetworkSnapshot::take(&net);
        assert_eq!(snap.mesh.count, 224);
        assert_eq!(snap.injection.count, 512);
        assert_eq!(snap.ejection.count, 512);
        assert!((snap.mesh.mean_rate_gbps - 10.0).abs() < 1e-9);
        assert_eq!(snap.flits_switched, 0);
        assert_eq!(snap.packets_delivered, 0);
        assert_eq!(snap.source_backlog, 0);
        let text = snap.to_string();
        assert!(text.contains("mesh:"));
        assert!(text.contains("224 links"));
    }

    #[test]
    fn snapshot_reflects_rate_changes_and_traffic() {
        let config = NocConfig::small_for_tests();
        let mut net = Network::new(&config);
        // Slow one mesh link down.
        net.link_mut(LinkId(0))
            .begin_rate_change(Picos::ZERO, Gbps::from_gbps(5.0), Picos::ZERO);
        net.inject(Packet::new(PacketId(1), NodeId(0), NodeId(1), 2, Picos::ZERO));
        let mut effects = Vec::new();
        for c in 0..50u64 {
            net.tick(Picos::from_ps(c * 1600), &mut effects);
            for eff in std::mem::take(&mut effects) {
                match eff {
                    crate::network::Effect::Flit { link, vc, flit, at } => {
                        net.flit_arrived(at, link, vc, flit, &mut effects)
                    }
                    crate::network::Effect::Credit { link, vc, .. } => {
                        net.credit_arrived(link, vc)
                    }
                    crate::network::Effect::Ejected { .. } => {}
                }
            }
        }
        let snap = NetworkSnapshot::take(&net);
        assert_eq!(snap.mesh.rate_changes, 1);
        assert!((snap.mesh.min_rate_gbps - 5.0).abs() < 1e-9);
        assert!((snap.mesh.max_rate_gbps - 10.0).abs() < 1e-9);
        assert!(snap.injection.flits_sent >= 2);
        assert!(snap.packets_delivered >= 1);
    }

    #[test]
    fn snapshot_of_single_rack_mesh_has_no_mesh_links() {
        // A 1×1 mesh has no inter-router links at all: the mesh class must
        // report clean zeros (not NaN means or infinite minima) and the
        // Display impl must stay well-formed.
        let mut config = NocConfig::small_for_tests();
        config.width = 1;
        config.height = 1;
        let net = Network::new(&config);
        let snap = NetworkSnapshot::take(&net);
        assert_eq!(snap.mesh.count, 0);
        assert_eq!(snap.mesh.mean_rate_gbps, 0.0);
        assert_eq!(snap.mesh.min_rate_gbps, 0.0);
        assert_eq!(snap.mesh.max_rate_gbps, 0.0);
        assert_eq!(snap.mesh.flits_sent, 0);
        assert!(snap.mesh.mean_rate_gbps.is_finite());
        assert_eq!(snap.injection.count, config.nodes_per_rack as usize);
        let text = snap.to_string();
        assert!(text.contains("0 links @ 0.00 Gb/s"), "{text}");
    }

    #[test]
    fn snapshot_under_saturated_buffers() {
        // Starve the credit loop: deliver flits but drop every credit
        // return, so each injection link can send exactly one buffer's
        // worth (depth × vcs) before stalling. The snapshot must show the
        // stall — capped flits_sent, flits backlogged at the source — and
        // never double-count the stuck flits.
        let config = NocConfig::small_for_tests();
        let mut net = Network::new(&config);
        let cap = config.buffer_depth as u64 * config.vcs as u64;
        // 5 four-flit packets: 20 flits, far more than one buffer (4).
        for p in 0..5u64 {
            net.inject(Packet::new(
                PacketId(p + 1),
                NodeId(0),
                NodeId(3),
                4,
                Picos::ZERO,
            ));
        }
        let mut effects = Vec::new();
        for c in 0..200u64 {
            net.tick(Picos::from_ps(c * 1600), &mut effects);
            for eff in std::mem::take(&mut effects) {
                match eff {
                    crate::network::Effect::Flit { link, vc, flit, at } => {
                        net.flit_arrived(at, link, vc, flit, &mut effects)
                    }
                    // Dropped: upstream never regains credit.
                    crate::network::Effect::Credit { .. } => {}
                    crate::network::Effect::Ejected { .. } => {}
                }
            }
        }
        let snap = NetworkSnapshot::take(&net);
        assert_eq!(
            snap.injection.flits_sent, cap,
            "a credit-starved injection link sends exactly one buffer"
        );
        assert!(
            snap.source_backlog >= 20 - cap as usize,
            "unsendable flits stay queued at the source, got {}",
            snap.source_backlog
        );
        // The initial credit allowance can carry the very first packet all
        // the way through; everything after it is wedged.
        assert!(snap.packets_delivered <= 1, "{}", snap.packets_delivered);
        assert_eq!(snap.packets_dropped, 0);
    }
}
