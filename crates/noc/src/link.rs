//! The variable-rate link model.
//!
//! Every unidirectional channel in the system — inter-router, injection
//! (node → router) and ejection (router → node) — is a [`Link`]: an
//! opto-electronic channel that serializes 16-bit flits at its *current*
//! bit rate, adds a fixed propagation delay, and can be disabled for a
//! window after bit-rate transitions (the CDR relock penalty, paper
//! §2.2.3 / §4.1).
//!
//! The link also keeps the utilization accounting the power-aware policy
//! samples: accumulated busy (serialization) time per observation window,
//! which divided by the window length is exactly the paper's `Lu` — the
//! fraction of time a flit occupies the output link (Eq. 10).

use crate::ids::{LinkId, NodeId, PortId, RouterId};
use lumen_desim::Picos;
use lumen_opto::Gbps;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a link connects on one side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endpoint {
    /// A specific port of a router.
    RouterPort {
        /// The router.
        router: RouterId,
        /// The port on that router.
        port: PortId,
    },
    /// A processing node (source or sink side).
    Node(NodeId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::RouterPort { router, port } => write!(f, "{router}:{port}"),
            Endpoint::Node(n) => write!(f, "{n}"),
        }
    }
}

/// The role a link plays in the clustered topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Router-to-router mesh channel.
    InterRouter,
    /// Node-to-router channel.
    Injection,
    /// Router-to-node channel.
    Ejection,
}

impl fmt::Display for LinkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkKind::InterRouter => "inter-router",
            LinkKind::Injection => "injection",
            LinkKind::Ejection => "ejection",
        };
        f.write_str(s)
    }
}

/// A unidirectional, variable-bit-rate opto-electronic channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    id: LinkId,
    kind: LinkKind,
    from: Endpoint,
    to: Endpoint,
    flit_bits: u32,
    propagation: Picos,
    rate: Gbps,
    // Serialization time of one flit at `rate`, recomputed on rate
    // changes so the per-flit hot path avoids a float division.
    flit_ps: u64,
    busy_until: Picos,
    disabled_until: Picos,
    window_busy: Picos,
    window_demand_ticks: u64,
    flits_sent: u64,
    flits_arrived: u64,
    rate_changes: u64,
}

impl Link {
    /// Creates a link at the given initial rate, idle and enabled.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive or `flit_bits` is zero.
    pub fn new(
        id: LinkId,
        kind: LinkKind,
        from: Endpoint,
        to: Endpoint,
        flit_bits: u32,
        propagation: Picos,
        rate: Gbps,
    ) -> Self {
        assert!(rate.as_gbps() > 0.0, "link rate must be positive");
        assert!(flit_bits > 0, "flits must carry bits");
        Link {
            id,
            kind,
            from,
            to,
            flit_bits,
            propagation,
            rate,
            flit_ps: rate.serialization_ps(flit_bits),
            busy_until: Picos::ZERO,
            disabled_until: Picos::ZERO,
            window_busy: Picos::ZERO,
            window_demand_ticks: 0,
            flits_sent: 0,
            flits_arrived: 0,
            rate_changes: 0,
        }
    }

    /// The link's id.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// The link's topological role.
    pub fn kind(&self) -> LinkKind {
        self.kind
    }

    /// The upstream endpoint (where credits return to).
    pub fn from(&self) -> Endpoint {
        self.from
    }

    /// The downstream endpoint (where flits arrive).
    pub fn to(&self) -> Endpoint {
        self.to
    }

    /// The current bit rate.
    pub fn rate(&self) -> Gbps {
        self.rate
    }

    /// Time to serialize one flit at the current rate.
    pub fn flit_time(&self) -> Picos {
        debug_assert_eq!(self.flit_ps, self.rate.serialization_ps(self.flit_bits));
        Picos::from_ps(self.flit_ps)
    }

    /// Whether a new flit can start at time `t` (idle and enabled).
    pub fn ready_at(&self, t: Picos) -> bool {
        t >= self.busy_until && t >= self.disabled_until
    }

    /// When the link next becomes able to start a flit.
    pub fn next_free(&self) -> Picos {
        self.busy_until.max(self.disabled_until)
    }

    /// Starts transmitting one flit at `start`; returns the arrival time at
    /// the downstream endpoint (serialization + propagation).
    ///
    /// # Panics
    ///
    /// Panics if the link is not ready at `start` (an allocation bug).
    pub fn start_flit(&mut self, start: Picos) -> Picos {
        assert!(
            self.ready_at(start),
            "{}: flit start at {start} while busy until {} / disabled until {}",
            self.id,
            self.busy_until,
            self.disabled_until
        );
        let ser = self.flit_time();
        self.busy_until = start + ser;
        self.window_busy += ser;
        self.flits_sent += 1;
        self.busy_until + self.propagation
    }

    /// Changes the bit rate; the link is disabled for `disable` after any
    /// in-flight flit drains (the CDR relock window `Tbr`). A `disable` of
    /// zero models the paper's transition-delay ablation.
    pub fn begin_rate_change(&mut self, now: Picos, new_rate: Gbps, disable: Picos) {
        assert!(new_rate.as_gbps() > 0.0, "link rate must be positive");
        let start = now.max(self.busy_until).max(self.disabled_until);
        self.disabled_until = start + disable;
        if (new_rate.as_gbps() - self.rate.as_gbps()).abs() > f64::EPSILON {
            self.rate_changes += 1;
        }
        self.rate = new_rate;
        self.flit_ps = new_rate.serialization_ps(self.flit_bits);
    }

    /// Disables the link until `until` without changing the rate (used for
    /// optical-power-level transitions on modulator-based links).
    pub fn disable_until(&mut self, until: Picos) {
        self.disabled_until = self.disabled_until.max(until);
    }

    /// When the current disable window ends.
    pub fn disabled_until(&self) -> Picos {
        self.disabled_until
    }

    /// Drains the accumulated busy time since the last call (part of the
    /// policy's link-utilization statistic).
    pub fn take_window_busy(&mut self) -> Picos {
        std::mem::replace(&mut self.window_busy, Picos::ZERO)
    }

    /// Notes that during the current core cycle at least one flit wanted
    /// this link (sent, or blocked only by the link being busy, disabled,
    /// or out of credits). Demand ticks let the policy see saturation even
    /// when allocator and flow-control overheads keep the raw busy
    /// fraction below 1 (see DESIGN.md, utilization calibration note).
    pub fn note_demand(&mut self) {
        self.window_demand_ticks += 1;
    }

    /// Drains the accumulated demand-tick count since the last call.
    pub fn take_window_demand(&mut self) -> u64 {
        std::mem::replace(&mut self.window_demand_ticks, 0)
    }

    /// Reads the accumulated demand ticks without draining them (used by
    /// the on/off discipline to watch sleeping links for demand).
    pub fn window_demand(&self) -> u64 {
        self.window_demand_ticks
    }

    /// Gates the link off: disabled indefinitely until
    /// [`Link::power_gate_wake`] re-enables it.
    pub fn power_gate_off(&mut self) {
        self.disabled_until = Picos::MAX;
    }

    /// Whether the link is currently gated off.
    pub fn is_power_gated(&self) -> bool {
        self.disabled_until == Picos::MAX
    }

    /// Wakes a gated-off link: it becomes usable at `t` (after the wake
    /// penalty). No-op on a link that is not gated off, preserving the
    /// monotone disable semantics of the DVS path.
    pub fn power_gate_wake(&mut self, t: Picos) {
        if self.is_power_gated() {
            self.disabled_until = t;
        }
    }

    /// Lifetime count of flits transmitted.
    pub fn flits_sent(&self) -> u64 {
        self.flits_sent
    }

    /// Records that a transmitted flit reached the downstream endpoint
    /// (called by the network when the arrival event is delivered).
    pub(crate) fn note_arrival(&mut self) {
        self.flits_arrived += 1;
        debug_assert!(
            self.flits_arrived <= self.flits_sent,
            "{}: more arrivals than sends",
            self.id
        );
    }

    /// Folds in arrivals that were delivered on another shard's replica of
    /// this link (the sharded runtime counts them on the receiving side and
    /// reconciles here at merge time, restoring `arrived <= sent`).
    pub(crate) fn absorb_arrivals(&mut self, n: u64) {
        self.flits_arrived += n;
        debug_assert!(
            self.flits_arrived <= self.flits_sent,
            "{}: more arrivals than sends after shard merge",
            self.id
        );
    }

    /// Lifetime count of flits delivered downstream. The difference
    /// `flits_sent() - flits_arrived()` is the number of flits currently
    /// in flight on the wire (used by the conservation auditor).
    pub fn flits_arrived(&self) -> u64 {
        self.flits_arrived
    }

    /// Lifetime count of bit-rate changes.
    pub fn rate_changes(&self) -> u64 {
        self.rate_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(rate: f64) -> Link {
        Link::new(
            LinkId(0),
            LinkKind::InterRouter,
            Endpoint::RouterPort {
                router: RouterId(0),
                port: PortId(8),
            },
            Endpoint::RouterPort {
                router: RouterId(1),
                port: PortId(9),
            },
            16,
            Picos::from_ps(3200),
            Gbps::from_gbps(rate),
        )
    }

    #[test]
    fn serialization_and_propagation() {
        let mut l = link(10.0);
        assert!(l.ready_at(Picos::ZERO));
        let arrival = l.start_flit(Picos::ZERO);
        // 1600 ps serialization + 3200 ps propagation
        assert_eq!(arrival, Picos::from_ps(4800));
        assert!(!l.ready_at(Picos::from_ps(1599)));
        assert!(l.ready_at(Picos::from_ps(1600)));
        assert_eq!(l.flits_sent(), 1);
    }

    #[test]
    fn slower_rate_longer_serialization() {
        let mut l = link(5.0);
        let arrival = l.start_flit(Picos::ZERO);
        assert_eq!(arrival, Picos::from_ps(3200 + 3200));
    }

    #[test]
    #[should_panic(expected = "while busy")]
    fn overlapping_flits_rejected() {
        let mut l = link(10.0);
        l.start_flit(Picos::ZERO);
        l.start_flit(Picos::from_ps(100));
    }

    #[test]
    fn rate_change_disables_after_drain() {
        let mut l = link(10.0);
        l.start_flit(Picos::ZERO); // busy until 1600
        l.begin_rate_change(
            Picos::from_ps(800),
            Gbps::from_gbps(5.0),
            Picos::from_ps(32_000),
        );
        // Disable window starts when the in-flight flit drains.
        assert_eq!(l.disabled_until(), Picos::from_ps(1600 + 32_000));
        assert!(!l.ready_at(Picos::from_ps(20_000)));
        assert!(l.ready_at(Picos::from_ps(33_600)));
        assert_eq!(l.rate(), Gbps::from_gbps(5.0));
        assert_eq!(l.rate_changes(), 1);
    }

    #[test]
    fn zero_penalty_rate_change_is_instant() {
        let mut l = link(10.0);
        l.begin_rate_change(Picos::from_ps(100), Gbps::from_gbps(5.0), Picos::ZERO);
        assert!(l.ready_at(Picos::from_ps(100)));
    }

    #[test]
    fn same_rate_change_not_counted() {
        let mut l = link(10.0);
        l.begin_rate_change(Picos::ZERO, Gbps::from_gbps(10.0), Picos::ZERO);
        assert_eq!(l.rate_changes(), 0);
    }

    #[test]
    fn window_busy_accumulates_and_drains() {
        let mut l = link(10.0);
        l.start_flit(Picos::ZERO);
        l.start_flit(Picos::from_ps(1600));
        assert_eq!(l.take_window_busy(), Picos::from_ps(3200));
        assert_eq!(l.take_window_busy(), Picos::ZERO);
        l.start_flit(Picos::from_ps(10_000));
        assert_eq!(l.take_window_busy(), Picos::from_ps(1600));
    }

    #[test]
    fn disable_until_is_monotone() {
        let mut l = link(10.0);
        l.disable_until(Picos::from_us(5));
        l.disable_until(Picos::from_us(3)); // must not shrink
        assert_eq!(l.disabled_until(), Picos::from_us(5));
    }

    #[test]
    fn next_free_combines_busy_and_disable() {
        let mut l = link(10.0);
        l.start_flit(Picos::ZERO);
        l.disable_until(Picos::from_ps(9000));
        assert_eq!(l.next_free(), Picos::from_ps(9000));
    }
}
