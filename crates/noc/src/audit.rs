//! Conservation auditor: whole-network flit and credit accounting checks.
//!
//! The auditor proves, from independently maintained counters, that the
//! simulator never creates or loses a flit and never mints a credit. Two
//! entry points:
//!
//! - [`audit`] checks invariants that hold at *every* event boundary
//!   (between processed events), even with traffic in flight:
//!   1. **Global flit conservation** — every flit that left a source is in
//!      exactly one place: on a wire (`flits_sent - flits_arrived` per
//!      link), in a router input buffer, or at a sink.
//!   2. **Per-router conservation** — flits accepted into a router equal
//!      flits switched out plus flits still buffered.
//!   3. **Per-sink conservation** — flits received equal flits of
//!      delivered packets plus flits of dropped packets plus flits of
//!      packets still being reassembled.
//!   4. **Credit soundness per (link, VC)** — credits held upstream plus
//!      flits occupying the downstream buffer never exceed the buffer
//!      depth (credits in flight make this an inequality mid-run).
//!
//! - [`audit_quiescent`] additionally requires the stronger equalities
//!   that only hold once the network has drained: every credit returned
//!   (balance exactly equals buffer depth) and every buffer empty.
//!
//! Fault-injection runs lean on this: dropped packets must be accounted,
//! not leaked, and a faulted link must never corrupt the credit economy.

use crate::link::Endpoint;
use crate::network::Network;
use std::fmt;

/// Counter snapshot plus any invariant violations found.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Flits that have left a source onto an injection link.
    pub flits_injected: u64,
    /// Flits currently traversing some link (sent but not yet arrived).
    pub flits_on_links: u64,
    /// Flits sitting in router input buffers.
    pub flits_buffered: u64,
    /// Flits that reached a sink.
    pub flits_received: u64,
    /// Flits of fully delivered packets.
    pub flits_delivered: u64,
    /// Flits of packets dropped after corruption was detected.
    pub flits_dropped: u64,
    /// Flits of packets still mid-reassembly at sinks.
    pub partial_flits: u64,
    /// Human-readable descriptions of every violated invariant (empty
    /// when the audit passes).
    pub violations: Vec<String>,
}

impl AuditReport {
    /// Whether every checked invariant held.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panics with the full violation list if the audit failed.
    ///
    /// # Panics
    ///
    /// Panics when any conservation invariant was violated.
    pub fn assert_ok(&self) {
        assert!(self.is_ok(), "conservation audit failed:\n{self}");
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "injected {} = on-links {} + buffered {} + received {} \
             (received {} = delivered {} + dropped {} + partial {})",
            self.flits_injected,
            self.flits_on_links,
            self.flits_buffered,
            self.flits_received,
            self.flits_received,
            self.flits_delivered,
            self.flits_dropped,
            self.partial_flits,
        )?;
        for v in &self.violations {
            writeln!(f, "  VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// Runs the anytime conservation checks (valid at any event boundary,
/// traffic in flight or not). See the module docs for the invariants.
pub fn audit(net: &Network) -> AuditReport {
    let mut violations = Vec::new();

    let flits_injected: u64 = net.sources().map(|s| s.flits_injected).sum();
    let flits_on_links: u64 = net
        .links()
        .map(|l| l.flits_sent() - l.flits_arrived())
        .sum();
    let flits_buffered: u64 = net
        .routers()
        .flat_map(|r| r.inputs.iter())
        .map(|p| p.buffer.total_occupancy() as u64)
        .sum();
    let flits_received: u64 = net.sinks().map(|s| s.flits_received).sum();
    let flits_delivered: u64 = net.sinks().map(|s| s.flits_delivered).sum();
    let flits_dropped: u64 = net.sinks().map(|s| s.flits_dropped).sum();
    let partial_flits: u64 = net.sinks().map(|s| s.partial_flits()).sum();

    if flits_injected != flits_on_links + flits_buffered + flits_received {
        violations.push(format!(
            "global flit conservation: injected {flits_injected} != on-links \
             {flits_on_links} + buffered {flits_buffered} + received {flits_received}"
        ));
    }
    if flits_received != flits_delivered + flits_dropped + partial_flits {
        violations.push(format!(
            "sink flit conservation: received {flits_received} != delivered \
             {flits_delivered} + dropped {flits_dropped} + partial {partial_flits}"
        ));
    }

    for router in net.routers() {
        let buffered: u64 = router
            .inputs
            .iter()
            .map(|p| p.buffer.total_occupancy() as u64)
            .sum();
        if router.flits_accepted != router.flits_switched + buffered {
            violations.push(format!(
                "{}: accepted {} != switched {} + buffered {buffered}",
                router.id(),
                router.flits_accepted,
                router.flits_switched
            ));
        }
    }

    check_credits(net, false, &mut violations);

    AuditReport {
        flits_injected,
        flits_on_links,
        flits_buffered,
        flits_received,
        flits_delivered,
        flits_dropped,
        partial_flits,
        violations,
    }
}

/// Runs the anytime checks plus the quiescent-only equalities: no flit
/// anywhere in flight and every credit back home at full balance.
pub fn audit_quiescent(net: &Network) -> AuditReport {
    let mut report = audit(net);
    if report.flits_on_links != 0 {
        report
            .violations
            .push(format!("{} flits on links at quiescence", report.flits_on_links));
    }
    if report.flits_buffered != 0 {
        report
            .violations
            .push(format!("{} flits buffered at quiescence", report.flits_buffered));
    }
    if report.partial_flits != 0 {
        report.violations.push(format!(
            "{} flits in partial packets at quiescence",
            report.partial_flits
        ));
    }
    check_credits(net, true, &mut report.violations);
    report
}

/// Per-(link, VC) credit checks. Mid-run: held + downstream occupancy ≤
/// depth (credits and flits in flight account for the gap). Quiescent:
/// held == depth exactly and occupancy is zero.
fn check_credits(net: &Network, quiescent: bool, violations: &mut Vec<String>) {
    let depth = u64::from(net.config().depth_per_vc());
    let vcs = net.config().vcs as usize;
    for link in net.links() {
        for vc in 0..vcs {
            let held = match link.from() {
                Endpoint::Node(n) => {
                    let src = net.sources().nth(n.index()).expect("source exists");
                    u64::from(src.credits()[vc])
                }
                Endpoint::RouterPort { router, port } => {
                    u64::from(net.router(router).outputs[port.0 as usize].credits[vc])
                }
            };
            let occupancy = match link.to() {
                Endpoint::Node(_) => 0, // sinks drain instantly
                Endpoint::RouterPort { router, port } => {
                    net.router(router).inputs[port.0 as usize]
                        .buffer
                        .len(crate::ids::VcId(vc as u8)) as u64
                }
            };
            if held + occupancy > depth {
                violations.push(format!(
                    "{} vc{vc}: credits {held} + downstream occupancy {occupancy} \
                     exceed depth {depth}",
                    link.id()
                ));
            }
            if quiescent && (held != depth || occupancy != 0) {
                violations.push(format!(
                    "{} vc{vc}: at quiescence credits {held} (expected {depth}), \
                     occupancy {occupancy} (expected 0)",
                    link.id()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NocConfig;
    use crate::flit::Packet;
    use crate::ids::{NodeId, PacketId};
    use crate::network::Effect;
    use lumen_desim::{EventQueue, Picos};

    /// Replays network effects at their due times (same shape as the
    /// driver in `network::tests`).
    fn run(net: &mut Network, cycles: u64, audit_every: u64) {
        let cycle = net.config().cycle();
        let mut queue: EventQueue<Effect> = EventQueue::new();
        let mut effects = Vec::new();
        let mut now = Picos::ZERO;
        for i in 0..cycles {
            while let Some(t) = queue.peek_time() {
                if t > now {
                    break;
                }
                let (at, eff) = queue.pop().expect("peeked");
                match eff {
                    Effect::Flit { link, vc, flit, .. } => {
                        net.flit_arrived(at, link, vc, flit, &mut effects);
                    }
                    Effect::Credit { link, vc, .. } => net.credit_arrived(link, vc),
                    Effect::Ejected { .. } => unreachable!("ejections emitted inline"),
                }
            }
            net.tick(now, &mut effects);
            for eff in effects.drain(..) {
                match eff {
                    Effect::Ejected { .. } => {}
                    Effect::Flit { at, .. } | Effect::Credit { at, .. } => {
                        queue.schedule(at, eff);
                    }
                }
            }
            if audit_every > 0 && i % audit_every == 0 {
                audit(net).assert_ok();
            }
            now += cycle;
        }
    }

    #[test]
    fn quiescent_audit_passes_after_drain() {
        let config = NocConfig::small_for_tests();
        let mut net = Network::new(&config);
        let mut id = 0;
        for s in 0..net.node_count() {
            for t in 0..net.node_count() {
                if s != t {
                    id += 1;
                    net.inject(Packet::new(
                        PacketId(id),
                        NodeId(s as u32),
                        NodeId(t as u32),
                        3,
                        Picos::ZERO,
                    ));
                }
            }
        }
        run(&mut net, 4000, 0);
        assert!(net.is_quiescent());
        let report = audit_quiescent(&net);
        report.assert_ok();
        assert_eq!(report.flits_injected, id * 3);
        assert_eq!(report.flits_delivered, id * 3);
        assert_eq!(report.flits_dropped, 0);
    }

    #[test]
    fn anytime_audit_passes_mid_flight() {
        let config = NocConfig::small_for_tests();
        let mut net = Network::new(&config);
        let mut id = 0;
        for s in 0..net.node_count() {
            for k in 0..4 {
                let t = (s + 1 + k) % net.node_count();
                if t != s {
                    id += 1;
                    net.inject(Packet::new(
                        PacketId(id),
                        NodeId(s as u32),
                        NodeId(t as u32),
                        6,
                        Picos::ZERO,
                    ));
                }
            }
        }
        // Audit every cycle while traffic is in full flight.
        run(&mut net, 600, 1);
    }

    #[test]
    fn corrupted_packets_are_accounted_not_leaked() {
        let config = NocConfig::small_for_tests();
        let mut net = Network::new(&config);
        // Inject with manual corruption: mark flits corrupted as they
        // come off the links by rewriting them in the replay loop.
        let mut id = 0;
        for s in 0..net.node_count() {
            let t = (s + 3) % net.node_count();
            if t != s {
                id += 1;
                net.inject(Packet::new(
                    PacketId(id),
                    NodeId(s as u32),
                    NodeId(t as u32),
                    4,
                    Picos::ZERO,
                ));
            }
        }
        let cycle = net.config().cycle();
        let mut queue: EventQueue<Effect> = EventQueue::new();
        let mut effects = Vec::new();
        let mut now = Picos::ZERO;
        let mut poisoned = 0u64;
        for _ in 0..4000 {
            while let Some(t) = queue.peek_time() {
                if t > now {
                    break;
                }
                let (at, eff) = queue.pop().expect("peeked");
                match eff {
                    Effect::Flit {
                        link,
                        vc,
                        mut flit,
                        ..
                    } => {
                        // Corrupt every 7th flit crossing any link.
                        if (flit.packet.0 * 31 + u64::from(flit.seq)) % 7 == 0 && !flit.corrupted
                        {
                            flit.corrupted = true;
                            poisoned += 1;
                        }
                        net.flit_arrived(at, link, vc, flit, &mut effects);
                    }
                    Effect::Credit { link, vc, .. } => net.credit_arrived(link, vc),
                    Effect::Ejected { .. } => unreachable!(),
                }
            }
            net.tick(now, &mut effects);
            for eff in effects.drain(..) {
                match eff {
                    Effect::Ejected { .. } => {}
                    Effect::Flit { at, .. } | Effect::Credit { at, .. } => {
                        queue.schedule(at, eff);
                    }
                }
            }
            now += cycle;
        }
        assert!(net.is_quiescent());
        assert!(poisoned > 0);
        assert!(net.packets_dropped() > 0, "some packets must be dropped");
        assert!(net.packets_delivered() > 0, "some packets must survive");
        let report = audit_quiescent(&net);
        report.assert_ok();
        assert_eq!(
            report.flits_delivered + report.flits_dropped,
            report.flits_injected,
            "every injected flit is delivered or dropped after drain"
        );
    }
}
