//! # lumen-opto — opto-electronic link physics and power models
//!
//! Implements Section 2 of *"Exploring the Design Space of Power-Aware
//! Opto-Electronic Networked Systems"* (HPCA-11, 2005): analytical power
//! models for every component of a board-to-board / box-to-box
//! opto-electronic link, under two transmitter technologies, together with
//! the dynamic power-control (bit-rate and supply-voltage scaling) behaviour
//! of each component.
//!
//! ## Link anatomy
//!
//! ```text
//!   Transmitter                                Receiver
//!  ┌───────────────────────────┐   fiber   ┌──────────────────────────────┐
//!  │ laser → modulator/driver  ├───────────┤ photodetector → TIA → CDR    │
//!  └───────────────────────────┘           └──────────────────────────────┘
//! ```
//!
//! Two transmitter options are modeled (paper §2.1):
//!
//! - **VCSEL** ([`vcsel`]): a directly-modulated vertical-cavity laser plus
//!   an inverter-chain driver. Both bit rate and supply voltage may scale.
//! - **MQW modulator** ([`modulator`]): an external mode-locked laser feeds
//!   a passive splitter tree ([`optics`]); each link has a multiple-quantum-
//!   well electro-absorption modulator and driver. The driver's supply stays
//!   fixed (voltage scaling would crush the contrast ratio), so only bit
//!   rate scales; optical power is stepped coarsely via attenuators.
//!
//! The receiver ([`photodetector`], [`tia`], [`cdr`]) is common to both.
//!
//! ## Two modeling layers
//!
//! 1. **First-principles models** (Eqs. 1–9 of the paper) in each component
//!    module — useful for link-level design-space exploration
//!    (`examples/link_designer.rs`).
//! 2. **Calibrated network models** ([`link`]): each component carries its
//!    measured power at the 10 Gb/s / 1.8 V operating point (paper Table 2)
//!    plus a [`scaling::ScalingTrend`]; this is what the network simulator
//!    integrates. [`presets`] provides the paper's 0.18 µm numbers.
//!
//! ## Example
//!
//! ```
//! use lumen_opto::link::OperatingPoint;
//! use lumen_opto::presets;
//!
//! let link = presets::paper_vcsel_link();
//! let full = link.power(OperatingPoint::paper_max());
//! assert!((full.as_mw() - 290.0).abs() < 1e-9);
//!
//! let half = link.power(OperatingPoint::paper_at_gbps(5.0));
//! assert!(half.as_mw() < 0.25 * full.as_mw()); // >75% link-level savings
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod budget;
pub mod cdr;
pub mod constants;
pub mod eye;
pub mod link;
pub mod modulator;
pub mod optics;
pub mod photodetector;
pub mod pll;
pub mod presets;
pub mod scaling;
pub mod sensitivity;
pub mod thermal;
pub mod tia;
pub mod units;
pub mod vcsel;

pub use link::{LinkPowerModel, OperatingPoint, TransmitterKind};
pub use units::{Decibels, Gbps, MicroWatts, MilliAmps, MilliWatts, Volts};
