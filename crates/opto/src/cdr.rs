//! Clock and data recovery (paper §2.2.3).
//!
//! The CDR is a PLL-based circuit that re-times an internal clock to the
//! incoming data and slices out the digital bits. The PLL and clock buffers
//! dominate, so power barely depends on bit *patterns*; being mostly digital
//! switching it follows (paper Eq. 9):
//!
//! ```text
//! P_CDR = α₃ · C_CDR · Vdd² · BR
//! ```
//!
//! Like the VCSEL driver it can be frequency- and voltage-scaled. The catch
//! is lock: any bit-rate change forces the timing loop to re-acquire, so the
//! link is unusable for the *bit-rate transition delay* `Tbr` after every
//! frequency hop — the central circuit constraint the paper's network policy
//! must absorb (20 router cycles in the evaluation).

use crate::units::{Gbps, MilliWatts, Volts};
use serde::{Deserialize, Serialize};

/// A PLL-based clock-and-data-recovery circuit model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cdr {
    switching_activity: f64,
    capacitance_f: f64,
    relock_cycles: u32,
}

impl Cdr {
    /// Creates a CDR model.
    ///
    /// * `switching_activity` — effective switching probability `α₃`.
    /// * `capacitance_f` — total switched capacitance `C_CDR` in farads.
    /// * `relock_cycles` — router-core cycles needed to re-acquire lock
    ///   after a bit-rate change (the paper's `Tbr`, 20 cycles).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range activity or non-positive capacitance.
    pub fn new(switching_activity: f64, capacitance_f: f64, relock_cycles: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&switching_activity),
            "switching activity must be in [0,1]"
        );
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        Cdr {
            switching_activity,
            capacitance_f,
            relock_cycles,
        }
    }

    /// A CDR calibrated so that `power(vdd, br) == target` at the given
    /// operating point (Table 2: 150 mW at 10 Gb/s, 1.8 V).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    pub fn calibrated(target: MilliWatts, vdd: Volts, br: Gbps, relock_cycles: u32) -> Self {
        assert!(target.as_mw() > 0.0 && vdd.as_v() > 0.0 && br.as_gbps() > 0.0);
        let alpha = 0.5;
        let c = target.as_watts() / (alpha * vdd.as_v() * vdd.as_v() * br.as_bits_per_sec());
        Cdr::new(alpha, c, relock_cycles)
    }

    /// Eq. 9 — power at a supply voltage and bit rate.
    pub fn power(&self, vdd: Volts, br: Gbps) -> MilliWatts {
        let w = self.switching_activity
            * self.capacitance_f
            * vdd.as_v()
            * vdd.as_v()
            * br.as_bits_per_sec();
        MilliWatts::from_mw(w * 1e3)
    }

    /// Router-core cycles the link is unusable after a bit-rate change
    /// while the timing loop re-locks (`Tbr`).
    pub fn relock_cycles(&self) -> u32 {
        self.relock_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_hits_table2() {
        let cdr = Cdr::calibrated(
            MilliWatts::from_mw(150.0),
            Volts::from_v(1.8),
            Gbps::from_gbps(10.0),
            20,
        );
        let p = cdr.power(Volts::from_v(1.8), Gbps::from_gbps(10.0));
        assert!((p.as_mw() - 150.0).abs() < 1e-9, "{p}");
        assert_eq!(cdr.relock_cycles(), 20);
    }

    #[test]
    fn scaling_trend_v2_br() {
        let cdr = Cdr::calibrated(
            MilliWatts::from_mw(150.0),
            Volts::from_v(1.8),
            Gbps::from_gbps(10.0),
            20,
        );
        let half = cdr.power(Volts::from_v(0.9), Gbps::from_gbps(5.0));
        // V²·BR: 1/8 of 150 = 18.75 mW
        assert!((half.as_mw() - 18.75).abs() < 1e-9, "{half}");
    }

    #[test]
    fn power_independent_of_relock() {
        let a = Cdr::new(0.5, 1e-12, 20);
        let b = Cdr::new(0.5, 1e-12, 200);
        assert_eq!(
            a.power(Volts::from_v(1.0), Gbps::from_gbps(5.0)),
            b.power(Volts::from_v(1.0), Gbps::from_gbps(5.0))
        );
    }

    #[test]
    #[should_panic(expected = "capacitance")]
    fn zero_capacitance_rejected() {
        let _ = Cdr::new(0.5, 0.0, 20);
    }
}
