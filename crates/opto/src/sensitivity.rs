//! Receiver sensitivity and bit-error-rate margin (paper §2.2.1).
//!
//! A receiver needs a minimum optical power — the *sensitivity* `Prec` — to
//! hit the target BER (10⁻¹² for inter-chassis/board links); higher bit
//! rates integrate fewer photons per bit and therefore need proportionally
//! more light. This module models `Prec(BR)` and converts optical margin
//! into a Q-factor / BER estimate, which the power-aware machinery uses to
//! check that reduced light levels (lower VOA settings, scaled-down VCSEL
//! swing) still close the link at reduced bit rates.

use crate::units::{Gbps, MicroWatts};
use serde::{Deserialize, Serialize};

/// Q-factor corresponding to BER = 10⁻¹² for a Gaussian-noise receiver.
pub const Q_FOR_1E_MINUS_12: f64 = 7.034;

/// Complementary error function via the Abramowitz–Stegun 7.1.26
/// approximation (max absolute error ≈ 1.5e-7) — ample for BER estimates.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// BER for a given Q-factor: `0.5 · erfc(Q/√2)`.
pub fn ber_from_q(q: f64) -> f64 {
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

/// A receiver sensitivity model: `Prec(BR) = Prec(BRmax) · (BR/BRmax)^k`.
///
/// `k = 1` is the thermal-noise-limited case (sensitivity linear in rate),
/// which the paper's "higher bit rates require higher receiver sensitivity"
/// statement reflects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityModel {
    prec_at_max: MicroWatts,
    br_max: Gbps,
    exponent: f64,
}

impl SensitivityModel {
    /// Creates a sensitivity model anchored at (`br_max`, `prec_at_max`).
    ///
    /// # Panics
    ///
    /// Panics if powers/rates are non-positive or the exponent is negative.
    pub fn new(prec_at_max: MicroWatts, br_max: Gbps, exponent: f64) -> Self {
        assert!(prec_at_max.as_uw() > 0.0, "sensitivity must be positive");
        assert!(br_max.as_gbps() > 0.0, "max bit rate must be positive");
        assert!(exponent >= 0.0, "exponent must be non-negative");
        SensitivityModel {
            prec_at_max,
            br_max,
            exponent,
        }
    }

    /// The paper's anchor: 25 µW at the receiver for a 10 Gb/s link,
    /// thermal-noise-limited scaling.
    pub fn paper_default() -> Self {
        SensitivityModel::new(MicroWatts::from_uw(25.0), Gbps::from_gbps(10.0), 1.0)
    }

    /// Required optical power at the receiver for bit rate `br`.
    ///
    /// # Panics
    ///
    /// Panics if `br` is not strictly positive.
    pub fn required(&self, br: Gbps) -> MicroWatts {
        assert!(br.as_gbps() > 0.0, "bit rate must be positive");
        let ratio = (br.as_gbps() / self.br_max.as_gbps()).powf(self.exponent);
        self.prec_at_max * ratio
    }

    /// Optical margin in linear terms: received / required.
    pub fn margin(&self, received: MicroWatts, br: Gbps) -> f64 {
        received / self.required(br)
    }

    /// Estimated Q-factor when `received` light arrives at bit rate `br`:
    /// Q scales linearly with optical power for a thermal-noise-limited
    /// receiver, anchored at Q = 7.034 (BER 10⁻¹²) when exactly at
    /// sensitivity.
    pub fn q_factor(&self, received: MicroWatts, br: Gbps) -> f64 {
        Q_FOR_1E_MINUS_12 * self.margin(received, br)
    }

    /// Estimated BER for the given received power and bit rate.
    pub fn ber(&self, received: MicroWatts, br: Gbps) -> f64 {
        ber_from_q(self.q_factor(received, br))
    }

    /// Whether the link closes (BER ≤ 10⁻¹²) at the given operating point.
    pub fn link_closes(&self, received: MicroWatts, br: Gbps) -> bool {
        self.margin(received, br) >= 1.0
    }

    /// Probability that a `bits`-wide flit crossing the link suffers at
    /// least one bit error at the given received power and bit rate:
    /// `1 − (1 − BER)^bits`, computed with `ln_1p`/`exp_m1` so tiny BERs
    /// don't vanish in floating-point cancellation. This is the corruption
    /// probability fault injection applies to flits launched while a laser
    /// is delivering degraded light.
    pub fn flit_corruption_probability(
        &self,
        received: MicroWatts,
        br: Gbps,
        bits: u32,
    ) -> f64 {
        let ber = self.ber(received, br).clamp(0.0, 1.0);
        if ber >= 1.0 {
            return 1.0;
        }
        -(f64::from(bits) * (-ber).ln_1p()).exp_m1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        // symmetry: erfc(-x) = 2 - erfc(x)
        assert!((erfc(-1.0) - (2.0 - 0.157_299_2)).abs() < 1e-6);
    }

    #[test]
    fn q7_gives_1e12_ber() {
        let ber = ber_from_q(Q_FOR_1E_MINUS_12);
        assert!(ber < 2e-12 && ber > 0.5e-12, "BER {ber}");
    }

    #[test]
    fn sensitivity_scales_linearly_with_rate() {
        let s = SensitivityModel::paper_default();
        assert!((s.required(Gbps::from_gbps(10.0)).as_uw() - 25.0).abs() < 1e-9);
        assert!((s.required(Gbps::from_gbps(5.0)).as_uw() - 12.5).abs() < 1e-9);
        assert!((s.required(Gbps::from_gbps(2.5)).as_uw() - 6.25).abs() < 1e-9);
    }

    #[test]
    fn margin_and_closure() {
        let s = SensitivityModel::paper_default();
        // Exactly at sensitivity: margin 1, link closes.
        assert!(s.link_closes(MicroWatts::from_uw(25.0), Gbps::from_gbps(10.0)));
        // 20 µW at 10 Gb/s: under-powered.
        assert!(!s.link_closes(MicroWatts::from_uw(20.0), Gbps::from_gbps(10.0)));
        // But the same 20 µW closes a 5 Gb/s link with margin.
        assert!(s.link_closes(MicroWatts::from_uw(20.0), Gbps::from_gbps(5.0)));
        assert!((s.margin(MicroWatts::from_uw(20.0), Gbps::from_gbps(5.0)) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn halved_light_halved_rate_keeps_ber() {
        // The key power-aware co-design fact: dropping the optical level
        // together with the bit rate preserves the BER target.
        let s = SensitivityModel::paper_default();
        let full = s.ber(MicroWatts::from_uw(25.0), Gbps::from_gbps(10.0));
        let half = s.ber(MicroWatts::from_uw(12.5), Gbps::from_gbps(5.0));
        assert!((full.log10() - half.log10()).abs() < 1e-6);
    }

    #[test]
    fn more_light_better_ber() {
        let s = SensitivityModel::paper_default();
        let at = s.ber(MicroWatts::from_uw(25.0), Gbps::from_gbps(10.0));
        let above = s.ber(MicroWatts::from_uw(50.0), Gbps::from_gbps(10.0));
        assert!(above < at);
    }

    #[test]
    fn flit_corruption_probability_behaves() {
        let s = SensitivityModel::paper_default();
        // Full margin: essentially zero corruption.
        let clean = s.flit_corruption_probability(
            MicroWatts::from_uw(80.0),
            Gbps::from_gbps(10.0),
            16,
        );
        assert!(clean < 1e-12, "clean {clean}");
        // Starved light: high corruption, bounded by 1.
        let starved = s.flit_corruption_probability(
            MicroWatts::from_uw(2.0),
            Gbps::from_gbps(10.0),
            16,
        );
        assert!(starved > 0.5 && starved <= 1.0, "starved {starved}");
        // Slowing the link at the same light level reduces corruption.
        let slowed = s.flit_corruption_probability(
            MicroWatts::from_uw(8.0),
            Gbps::from_gbps(5.0),
            16,
        );
        let fast = s.flit_corruption_probability(
            MicroWatts::from_uw(8.0),
            Gbps::from_gbps(10.0),
            16,
        );
        assert!(slowed < fast, "slowed {slowed} vs fast {fast}");
        // Small-BER regime agrees with bits · BER to first order.
        let ber = s.ber(MicroWatts::from_uw(8.0), Gbps::from_gbps(5.0));
        assert!((slowed - 16.0 * ber).abs() / slowed < 1e-3);
    }

    #[test]
    fn constant_exponent_flat_sensitivity() {
        let s = SensitivityModel::new(MicroWatts::from_uw(25.0), Gbps::from_gbps(10.0), 0.0);
        assert_eq!(
            s.required(Gbps::from_gbps(1.0)),
            s.required(Gbps::from_gbps(10.0))
        );
    }
}
