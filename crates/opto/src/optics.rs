//! External laser source, splitter tree and variable optical attenuators
//! (paper §2.1.2, §3.1 and Fig. 3).
//!
//! In the MQW-modulator scheme, one central mode-locked laser in its own
//! chassis feeds every transmitter in the system. Light is split statically
//! — in the paper's 64-rack system through a 1:64 stage followed by a 1:20
//! stage per rack — and a variable optical attenuator (VOA) per outgoing
//! fiber steps each link's light level among coarse optical power levels.
//! The laser lives outside the system's power/cooling budget, which is the
//! scheme's main thermal selling point; what the network pays for is the
//! modulator + driver (electrical) and the VOA control.
//!
//! VOAs are slow: the paper assumes a ~100 µs transition, which is why the
//! external-laser controller uses few, coarse levels and a long (200 µs)
//! decision period.

use crate::units::{Decibels, MicroWatts};
use serde::{Deserialize, Serialize};

/// The coarse optical power level of a link fed by the external laser
/// (paper §3.2.2): `Plow = 0.5 · Pmid`, `Pmid = 0.5 · Phigh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpticalLevel {
    /// Quarter power — supports bit rates below 4 Gb/s.
    Low,
    /// Half power — supports 4–6 Gb/s.
    Mid,
    /// Full power — supports 6–10 Gb/s.
    High,
}

impl OpticalLevel {
    /// All levels, ascending.
    pub const ALL: [OpticalLevel; 3] = [OpticalLevel::Low, OpticalLevel::Mid, OpticalLevel::High];

    /// Fraction of the full optical power delivered at this level.
    pub fn fraction(self) -> f64 {
        match self {
            OpticalLevel::Low => 0.25,
            OpticalLevel::Mid => 0.5,
            OpticalLevel::High => 1.0,
        }
    }

    /// The attenuation a VOA must add (relative to `High`) to realize this
    /// level.
    pub fn attenuation(self) -> Decibels {
        Decibels::from_linear(1.0 / self.fraction())
    }

    /// The minimum level able to support `bit_rate_gbps` per the paper's
    /// banding: `<4 → Low`, `4–6 → Mid`, `>6 → High`.
    pub fn required_for_gbps(bit_rate_gbps: f64) -> OpticalLevel {
        if bit_rate_gbps < 4.0 {
            OpticalLevel::Low
        } else if bit_rate_gbps <= 6.0 {
            OpticalLevel::Mid
        } else {
            OpticalLevel::High
        }
    }

    /// The next level up, saturating at `High`.
    pub fn step_up(self) -> OpticalLevel {
        match self {
            OpticalLevel::Low => OpticalLevel::Mid,
            OpticalLevel::Mid | OpticalLevel::High => OpticalLevel::High,
        }
    }

    /// The next level down, saturating at `Low`.
    pub fn step_down(self) -> OpticalLevel {
        match self {
            OpticalLevel::High => OpticalLevel::Mid,
            OpticalLevel::Mid | OpticalLevel::Low => OpticalLevel::Low,
        }
    }
}

/// One fused-fiber splitting stage: an ideal 1:N split plus excess loss.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitterStage {
    ways: u32,
    excess_loss: Decibels,
}

impl SplitterStage {
    /// Creates a 1:`ways` splitting stage with the given excess loss on top
    /// of the ideal `10·log10(ways)` dB splitting loss.
    ///
    /// # Panics
    ///
    /// Panics if `ways < 2` or excess loss is negative.
    pub fn new(ways: u32, excess_loss: Decibels) -> Self {
        assert!(ways >= 2, "a splitter needs at least 2 ways");
        assert!(excess_loss.as_db() >= 0.0, "excess loss must be non-negative");
        SplitterStage { ways, excess_loss }
    }

    /// Number of output ways.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Ideal splitting loss `10·log10(ways)`.
    pub fn ideal_loss(&self) -> Decibels {
        Decibels::from_linear(self.ways as f64)
    }

    /// Total insertion loss (ideal + excess).
    pub fn insertion_loss(&self) -> Decibels {
        self.ideal_loss() + self.excess_loss
    }
}

/// A chain of splitting stages from the central laser to one link's
/// transmitter.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SplitterTree {
    stages: Vec<SplitterStage>,
}

impl SplitterTree {
    /// An empty tree (no splitting).
    pub fn new() -> Self {
        SplitterTree { stages: Vec::new() }
    }

    /// The paper's distribution (Fig. 3(b)): a 1:64 stage to the racks
    /// followed by a 1:20 stage within each rack. Excess losses follow the
    /// footnote's 1:16 ≤ 13.6 dB datum (≈1.56 dB excess per stage).
    pub fn paper_64rack() -> Self {
        let mut tree = SplitterTree::new();
        tree.push(SplitterStage::new(64, Decibels::from_db(1.6)));
        tree.push(SplitterStage::new(20, Decibels::from_db(1.6)));
        tree
    }

    /// Appends a stage.
    pub fn push(&mut self, stage: SplitterStage) -> &mut Self {
        self.stages.push(stage);
        self
    }

    /// Iterates over the stages.
    pub fn iter(&self) -> std::slice::Iter<'_, SplitterStage> {
        self.stages.iter()
    }

    /// Total number of leaf fibers (product of stage ways).
    pub fn leaf_count(&self) -> u64 {
        self.stages.iter().map(|s| s.ways() as u64).product()
    }

    /// Total insertion loss from root to any leaf.
    pub fn total_loss(&self) -> Decibels {
        self.stages
            .iter()
            .map(SplitterStage::insertion_loss)
            .fold(Decibels::ZERO, |a, b| a + b)
    }

    /// Optical power reaching a leaf for a given laser output.
    pub fn power_at_leaf(&self, laser_output: MicroWatts) -> MicroWatts {
        laser_output.attenuate(self.total_loss())
    }
}

/// The external mode-locked laser source with its splitter tree and
/// per-link VOA settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalLaserSource {
    output: MicroWatts,
    tree: SplitterTree,
    voa_floor_loss: Decibels,
}

impl ExternalLaserSource {
    /// Creates a source with the given continuous-wave output power,
    /// distribution tree, and VOA pass-through (floor) loss.
    ///
    /// # Panics
    ///
    /// Panics if the output power is not strictly positive or the floor
    /// loss is negative.
    pub fn new(output: MicroWatts, tree: SplitterTree, voa_floor_loss: Decibels) -> Self {
        assert!(output.as_uw() > 0.0, "laser output must be positive");
        assert!(voa_floor_loss.as_db() >= 0.0, "VOA floor loss must be non-negative");
        ExternalLaserSource {
            output,
            tree,
            voa_floor_loss,
        }
    }

    /// The paper's configuration: a mode-locked laser sized so that every
    /// one of the 1280 leaves still receives comfortably more than the
    /// 25 µW (at 10 Gb/s) receiver requirement after ~32 dB of splitting.
    /// A 500 mW CW source leaves ≈180 µW per leaf.
    pub fn paper_default() -> Self {
        ExternalLaserSource::new(
            MicroWatts::from_uw(500_000.0),
            SplitterTree::paper_64rack(),
            Decibels::from_db(0.5),
        )
    }

    /// The laser's CW output.
    pub fn output(&self) -> MicroWatts {
        self.output
    }

    /// The splitter tree.
    pub fn tree(&self) -> &SplitterTree {
        &self.tree
    }

    /// Light delivered to one link's modulator at a given optical level.
    pub fn power_at_link(&self, level: OpticalLevel) -> MicroWatts {
        self.tree
            .power_at_leaf(self.output)
            .attenuate(self.voa_floor_loss)
            .attenuate(level.attenuation())
    }

    /// Whether the delivered light at `level` meets a required receiver
    /// power after a further path loss (fiber + modulator insertion loss).
    pub fn supports(&self, level: OpticalLevel, path_loss: Decibels, required: MicroWatts) -> bool {
        self.power_at_link(level).attenuate(path_loss) >= required
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_fractions_halve() {
        assert_eq!(OpticalLevel::High.fraction(), 1.0);
        assert_eq!(OpticalLevel::Mid.fraction(), 0.5);
        assert_eq!(OpticalLevel::Low.fraction(), 0.25);
    }

    #[test]
    fn level_banding_matches_paper() {
        assert_eq!(OpticalLevel::required_for_gbps(3.3), OpticalLevel::Low);
        assert_eq!(OpticalLevel::required_for_gbps(4.0), OpticalLevel::Mid);
        assert_eq!(OpticalLevel::required_for_gbps(5.0), OpticalLevel::Mid);
        assert_eq!(OpticalLevel::required_for_gbps(6.0), OpticalLevel::Mid);
        assert_eq!(OpticalLevel::required_for_gbps(6.5), OpticalLevel::High);
        assert_eq!(OpticalLevel::required_for_gbps(10.0), OpticalLevel::High);
    }

    #[test]
    fn level_stepping_saturates() {
        assert_eq!(OpticalLevel::Low.step_up(), OpticalLevel::Mid);
        assert_eq!(OpticalLevel::Mid.step_up(), OpticalLevel::High);
        assert_eq!(OpticalLevel::High.step_up(), OpticalLevel::High);
        assert_eq!(OpticalLevel::High.step_down(), OpticalLevel::Mid);
        assert_eq!(OpticalLevel::Low.step_down(), OpticalLevel::Low);
    }

    #[test]
    fn level_attenuations() {
        assert!((OpticalLevel::Mid.attenuation().as_db() - 3.0103).abs() < 0.001);
        assert!((OpticalLevel::Low.attenuation().as_db() - 6.0206).abs() < 0.001);
        assert!(OpticalLevel::High.attenuation().as_db().abs() < 1e-9);
    }

    #[test]
    fn splitter_1_to_16_within_paper_footnote() {
        // Paper footnote: 1:16 splitting has at most 13.6 dB insertion loss.
        let s = SplitterStage::new(16, Decibels::from_db(1.5));
        let loss = s.insertion_loss().as_db();
        assert!(loss <= 13.6, "1:16 loss {loss} dB");
        assert!(loss >= 12.0, "must include the ideal 12 dB: {loss}");
    }

    #[test]
    fn tree_loss_accumulates() {
        let tree = SplitterTree::paper_64rack();
        assert_eq!(tree.leaf_count(), 1280);
        let loss = tree.total_loss().as_db();
        // ideal: 10log10(64) + 10log10(20) = 18.06 + 13.01 = 31.07 (+3.2 excess)
        assert!((loss - 34.27).abs() < 0.05, "tree loss {loss}");
    }

    #[test]
    fn paper_source_feeds_all_links() {
        let src = ExternalLaserSource::paper_default();
        // At full level, each leaf must comfortably exceed the 25 µW
        // 10 Gb/s receiver sensitivity even after ~3 dB of path loss.
        let high = src.power_at_link(OpticalLevel::High);
        assert!(high.as_uw() > 100.0, "delivered {high}");
        assert!(src.supports(
            OpticalLevel::High,
            Decibels::from_db(3.0),
            MicroWatts::from_uw(25.0)
        ));
    }

    #[test]
    fn levels_scale_delivered_light() {
        let src = ExternalLaserSource::paper_default();
        let high = src.power_at_link(OpticalLevel::High).as_uw();
        let mid = src.power_at_link(OpticalLevel::Mid).as_uw();
        let low = src.power_at_link(OpticalLevel::Low).as_uw();
        assert!((mid / high - 0.5).abs() < 1e-6);
        assert!((low / high - 0.25).abs() < 1e-6);
    }

    #[test]
    fn empty_tree_is_lossless() {
        let tree = SplitterTree::new();
        assert_eq!(tree.total_loss(), Decibels::ZERO);
        assert_eq!(tree.leaf_count(), 1);
        let p = tree.power_at_leaf(MicroWatts::from_uw(10.0));
        assert!((p.as_uw() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_way_splitter_rejected() {
        let _ = SplitterStage::new(1, Decibels::ZERO);
    }
}
