//! Power-scaling trends under dynamic bit-rate and voltage control
//! (paper Table 2).
//!
//! Each link component's power follows a characteristic trend as the
//! operating point scales below nominal:
//!
//! | Component        | Trend      |
//! |------------------|------------|
//! | VCSEL            | ∼ Vdd      |
//! | VCSEL driver     | Vdd² · BR  |
//! | Modulator driver | BR         |
//! | TIA              | Vdd · BR   |
//! | CDR              | Vdd² · BR  |
//!
//! The modulator driver's supply is pinned (voltage scaling would collapse
//! the contrast ratio), hence its bit-rate-only trend.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How a component's power scales with the supply-voltage ratio `v` and
/// bit-rate ratio `b` relative to its calibration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalingTrend {
    /// No scaling: power is fixed regardless of operating point.
    Constant,
    /// Power ∝ Vdd (the VCSEL: modulation current tracks the driver rail).
    Vdd,
    /// Power ∝ BR (the modulator driver: fixed supply, rate-only scaling).
    Br,
    /// Power ∝ Vdd · BR (the TIA: bias current tracks bandwidth and rail).
    VddBr,
    /// Power ∝ Vdd² · BR (digital switching: VCSEL driver and CDR).
    Vdd2Br,
}

impl ScalingTrend {
    /// The multiplicative power factor at voltage ratio `v` and bit-rate
    /// ratio `b` (both relative to the calibration point, in `[0, 1]` for
    /// down-scaling).
    ///
    /// # Panics
    ///
    /// Panics if either ratio is negative or non-finite.
    pub fn factor(self, v: f64, b: f64) -> f64 {
        assert!(v.is_finite() && v >= 0.0, "voltage ratio must be non-negative");
        assert!(b.is_finite() && b >= 0.0, "bit-rate ratio must be non-negative");
        match self {
            ScalingTrend::Constant => 1.0,
            ScalingTrend::Vdd => v,
            ScalingTrend::Br => b,
            ScalingTrend::VddBr => v * b,
            ScalingTrend::Vdd2Br => v * v * b,
        }
    }

    /// Whether this trend responds to supply-voltage scaling at all.
    pub fn voltage_sensitive(self) -> bool {
        matches!(
            self,
            ScalingTrend::Vdd | ScalingTrend::VddBr | ScalingTrend::Vdd2Br
        )
    }

    /// Whether this trend responds to bit-rate scaling at all.
    pub fn rate_sensitive(self) -> bool {
        matches!(
            self,
            ScalingTrend::Br | ScalingTrend::VddBr | ScalingTrend::Vdd2Br
        )
    }
}

impl fmt::Display for ScalingTrend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalingTrend::Constant => "const",
            ScalingTrend::Vdd => "~Vdd",
            ScalingTrend::Br => "BR",
            ScalingTrend::VddBr => "Vdd*BR",
            ScalingTrend::Vdd2Br => "Vdd^2*BR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_at_half_point() {
        // v = b = 0.5 (the paper's 5 Gb/s / 0.9 V point)
        assert_eq!(ScalingTrend::Constant.factor(0.5, 0.5), 1.0);
        assert_eq!(ScalingTrend::Vdd.factor(0.5, 0.5), 0.5);
        assert_eq!(ScalingTrend::Br.factor(0.5, 0.5), 0.5);
        assert_eq!(ScalingTrend::VddBr.factor(0.5, 0.5), 0.25);
        assert_eq!(ScalingTrend::Vdd2Br.factor(0.5, 0.5), 0.125);
    }

    #[test]
    fn nominal_point_is_identity() {
        for t in [
            ScalingTrend::Constant,
            ScalingTrend::Vdd,
            ScalingTrend::Br,
            ScalingTrend::VddBr,
            ScalingTrend::Vdd2Br,
        ] {
            assert_eq!(t.factor(1.0, 1.0), 1.0, "{t}");
        }
    }

    #[test]
    fn sensitivity_flags() {
        assert!(!ScalingTrend::Constant.voltage_sensitive());
        assert!(!ScalingTrend::Constant.rate_sensitive());
        assert!(ScalingTrend::Vdd.voltage_sensitive());
        assert!(!ScalingTrend::Vdd.rate_sensitive());
        assert!(!ScalingTrend::Br.voltage_sensitive());
        assert!(ScalingTrend::Br.rate_sensitive());
        assert!(ScalingTrend::VddBr.voltage_sensitive());
        assert!(ScalingTrend::Vdd2Br.rate_sensitive());
    }

    #[test]
    fn modulator_driver_ignores_voltage() {
        // Fixed-supply driver: halving "voltage" must not change power.
        assert_eq!(
            ScalingTrend::Br.factor(0.5, 0.8),
            ScalingTrend::Br.factor(1.0, 0.8)
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(ScalingTrend::Vdd2Br.to_string(), "Vdd^2*BR");
        assert_eq!(ScalingTrend::Vdd.to_string(), "~Vdd");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ratio_rejected() {
        let _ = ScalingTrend::Vdd.factor(-0.1, 0.5);
    }
}
