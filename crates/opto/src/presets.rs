//! Paper-calibrated link configurations (0.18 µm CMOS, Table 2).
//!
//! These presets reproduce the paper's component powers at the 10 Gb/s /
//! 1.8 V operating point and their Table-2 scaling trends:
//!
//! | Component        | Power (mW) | Trend      |
//! |------------------|-----------:|------------|
//! | VCSEL            |         30 | ∼ Vdd      |
//! | VCSEL driver     |         10 | Vdd² · BR  |
//! | Modulator driver |         40 | BR         |
//! | TIA              |        100 | Vdd · BR   |
//! | CDR              |        150 | Vdd² · BR  |
//!
//! Both transmitter stacks total 290 mW per unidirectional link at full
//! rate (Tx ≈ 40 mW, Rx = 250 mW).

use crate::link::{CalibratedComponent, ComponentId, LinkPowerModel, OperatingPoint, TransmitterKind};
use crate::scaling::ScalingTrend;
use crate::units::MilliWatts;

/// Table 2 power: VCSEL laser, 30 mW.
pub const VCSEL_MW: f64 = 30.0;
/// Table 2 power: VCSEL driver, 10 mW.
pub const VCSEL_DRIVER_MW: f64 = 10.0;
/// Table 2 power: modulator driver, 40 mW.
pub const MODULATOR_DRIVER_MW: f64 = 40.0;
/// Table 2 power: TIA, 100 mW.
pub const TIA_MW: f64 = 100.0;
/// Table 2 power: CDR, 150 mW.
pub const CDR_MW: f64 = 150.0;

/// The paper's VCSEL-based link: laser + driver + TIA + CDR, 290 mW at
/// 10 Gb/s / 1.8 V, with Table 2 scaling trends.
pub fn paper_vcsel_link() -> LinkPowerModel {
    LinkPowerModel::new(
        TransmitterKind::Vcsel,
        OperatingPoint::paper_max(),
        vec![
            CalibratedComponent::new(
                ComponentId::Vcsel,
                MilliWatts::from_mw(VCSEL_MW),
                ScalingTrend::Vdd,
            ),
            CalibratedComponent::new(
                ComponentId::VcselDriver,
                MilliWatts::from_mw(VCSEL_DRIVER_MW),
                ScalingTrend::Vdd2Br,
            ),
            CalibratedComponent::new(
                ComponentId::Tia,
                MilliWatts::from_mw(TIA_MW),
                ScalingTrend::VddBr,
            ),
            CalibratedComponent::new(
                ComponentId::Cdr,
                MilliWatts::from_mw(CDR_MW),
                ScalingTrend::Vdd2Br,
            ),
        ],
    )
}

/// The paper's MQW-modulator-based link: modulator driver (fixed supply,
/// bit-rate-only scaling) + TIA + CDR, 290 mW at 10 Gb/s.
pub fn paper_modulator_link() -> LinkPowerModel {
    LinkPowerModel::new(
        TransmitterKind::MqwModulator,
        OperatingPoint::paper_max(),
        vec![
            CalibratedComponent::new(
                ComponentId::ModulatorDriver,
                MilliWatts::from_mw(MODULATOR_DRIVER_MW),
                ScalingTrend::Br,
            ),
            CalibratedComponent::new(
                ComponentId::Tia,
                MilliWatts::from_mw(TIA_MW),
                ScalingTrend::VddBr,
            ),
            CalibratedComponent::new(
                ComponentId::Cdr,
                MilliWatts::from_mw(CDR_MW),
                ScalingTrend::Vdd2Br,
            ),
        ],
    )
}

/// The link model for a given transmitter technology.
pub fn paper_link(kind: TransmitterKind) -> LinkPowerModel {
    match kind {
        TransmitterKind::Vcsel => paper_vcsel_link(),
        TransmitterKind::MqwModulator => paper_modulator_link(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_stacks_total_290() {
        assert!((paper_vcsel_link().max_power().as_mw() - 290.0).abs() < 1e-9);
        assert!((paper_modulator_link().max_power().as_mw() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn tx_rx_split_matches_paper() {
        // Paper §4.1: transmitter ≈40 mW, receiver ≈250 mW.
        let link = paper_vcsel_link();
        let op = OperatingPoint::paper_max();
        let tx = link.component_power(ComponentId::Vcsel, op).unwrap()
            + link.component_power(ComponentId::VcselDriver, op).unwrap();
        let rx = link.component_power(ComponentId::Tia, op).unwrap()
            + link.component_power(ComponentId::Cdr, op).unwrap();
        assert!((tx.as_mw() - 40.0).abs() < 1e-9);
        assert!((rx.as_mw() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn paper_link_dispatch() {
        assert_eq!(
            paper_link(TransmitterKind::Vcsel).transmitter(),
            TransmitterKind::Vcsel
        );
        assert_eq!(
            paper_link(TransmitterKind::MqwModulator).transmitter(),
            TransmitterKind::MqwModulator
        );
    }
}
