//! Physical constants used by the photonics models.

/// Elementary charge, in coulombs.
pub const ELECTRON_CHARGE_C: f64 = 1.602_176_634e-19;

/// Planck constant, in joule-seconds.
pub const PLANCK_J_S: f64 = 6.626_070_15e-34;

/// Speed of light in vacuum, in meters per second.
pub const SPEED_OF_LIGHT_M_S: f64 = 2.997_924_58e8;

/// Telecom C-band wavelength used throughout the paper's link budget
/// (1550 nm InGaAlAs VCSELs / MQW modulators), in meters.
pub const WAVELENGTH_M: f64 = 1.55e-6;

/// Optical frequency ν = c / λ at the telecom wavelength, in hertz.
pub fn optical_frequency_hz() -> f64 {
    SPEED_OF_LIGHT_M_S / WAVELENGTH_M
}

/// Photon energy hν at the telecom wavelength, in joules.
pub fn photon_energy_j() -> f64 {
    PLANCK_J_S * optical_frequency_hz()
}

/// Responsivity upper bound q/(hν): amps of photocurrent per watt of light
/// for a unit-quantum-efficiency detector at the telecom wavelength.
pub fn ideal_responsivity_a_per_w() -> f64 {
    ELECTRON_CHARGE_C / photon_energy_j()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optical_frequency_is_193_thz() {
        let nu = optical_frequency_hz();
        assert!((nu - 1.934e14).abs() / 1.934e14 < 0.01, "nu = {nu}");
    }

    #[test]
    fn photon_energy_is_0_8_ev() {
        let ev = photon_energy_j() / ELECTRON_CHARGE_C;
        assert!((ev - 0.8).abs() < 0.01, "photon energy {ev} eV");
    }

    #[test]
    fn ideal_responsivity_about_1_25() {
        let r = ideal_responsivity_a_per_w();
        assert!((r - 1.25).abs() < 0.01, "responsivity {r} A/W");
    }
}
