//! End-to-end optical link budgets.
//!
//! Ties the component models together into the question a link designer
//! actually asks (and that §2 of the paper walks through piecewise): *from
//! laser to detector, does this link close at this bit rate, and with how
//! much margin?* A [`LinkBudget`] walks the optical path —
//!
//! ```text
//! source light → [splitter tree] → [VOA level] → modulator IL / VCSEL OMA
//!             → fiber & connector loss → detector → eye analysis
//! ```
//!
//! — and produces a [`BudgetReport`] with the power at each stage plus the
//! final margin, for both transmitter technologies.

use crate::eye::EyeAnalysis;
use crate::link::TransmitterKind;
use crate::modulator::MqwModulator;
use crate::optics::{ExternalLaserSource, OpticalLevel};
use crate::units::{Decibels, Gbps, MicroWatts};
use crate::vcsel::Vcsel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One named attenuation stage in the path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetStage {
    /// Human-readable stage name.
    pub name: String,
    /// Optical power *after* this stage.
    pub power_after: MicroWatts,
}

/// The result of evaluating a link budget at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    /// The bit rate evaluated.
    pub bit_rate: Gbps,
    /// Power after each stage, source first.
    pub stages: Vec<BudgetStage>,
    /// Eye margin at the detector.
    pub margin: Decibels,
    /// Whether the link closes (margin ≥ 0 dB).
    pub closes: bool,
}

impl fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "link budget at {}:", self.bit_rate)?;
        for s in &self.stages {
            writeln!(f, "  {:<24} {}", s.name, s.power_after)?;
        }
        write!(
            f,
            "  margin {:.2} dB → {}",
            self.margin.as_db(),
            if self.closes { "closes" } else { "FAILS" }
        )
    }
}

/// An end-to-end optical path description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    transmitter: TransmitterKind,
    laser_source: Option<ExternalLaserSource>,
    modulator: Option<MqwModulator>,
    vcsel: Option<Vcsel>,
    fiber_loss: Decibels,
    connector_loss: Decibels,
    /// Transmitter-to-fiber coupling loss (large for free-space/unlensed
    /// VCSEL paths, per the paper's power-minimization reference \[10\]).
    coupling_loss: Decibels,
    eye: EyeAnalysis,
}

impl LinkBudget {
    /// The paper's MQW path: central laser → 64×20 splitter tree → VOA →
    /// InGaAs modulator → 1 dB fiber + 1 dB connectors → paper receiver.
    pub fn paper_mqw() -> Self {
        LinkBudget {
            transmitter: TransmitterKind::MqwModulator,
            laser_source: Some(ExternalLaserSource::paper_default()),
            modulator: Some(MqwModulator::ingaas_10g()),
            vcsel: None,
            fiber_loss: Decibels::from_db(1.0),
            connector_loss: Decibels::from_db(1.0),
            coupling_loss: Decibels::from_db(0.0),
            eye: EyeAnalysis::paper_default(),
        }
    }

    /// The paper's VCSEL path: on-board laser → 12 dB free-space/coupling
    /// loss (the budget regime of the paper's ref. \[10\], which assumes
    /// ~25 µW reaching a 10 Gb/s receiver) → 1 dB fiber + 1 dB
    /// connectors → paper receiver.
    pub fn paper_vcsel() -> Self {
        LinkBudget {
            transmitter: TransmitterKind::Vcsel,
            laser_source: None,
            modulator: None,
            vcsel: Some(Vcsel::oxide_aperture_10g()),
            fiber_loss: Decibels::from_db(1.0),
            connector_loss: Decibels::from_db(1.0),
            coupling_loss: Decibels::from_db(12.0),
            eye: EyeAnalysis::paper_default(),
        }
    }

    /// The transmitter technology of this path.
    pub fn transmitter(&self) -> TransmitterKind {
        self.transmitter
    }

    /// Evaluates the budget at a bit rate, optical level (MQW only), and
    /// driver supply ratio (VCSEL only; 1.0 = full swing).
    ///
    /// # Panics
    ///
    /// Panics if the supply ratio is outside `[0, 1]`.
    pub fn evaluate(&self, br: Gbps, level: OpticalLevel, supply_ratio: f64) -> BudgetReport {
        let mut stages = Vec::new();
        let (signal, contrast) = match self.transmitter {
            TransmitterKind::MqwModulator => {
                let source = self.laser_source.as_ref().expect("MQW path has a source");
                let modulator = self.modulator.as_ref().expect("MQW path has a modulator");
                let at_link = source.power_at_link(level);
                stages.push(BudgetStage {
                    name: format!("laser + tree + VOA ({level:?})"),
                    power_after: at_link,
                });
                let on = modulator.transmitted_on(at_link);
                stages.push(BudgetStage {
                    name: "modulator (on state)".into(),
                    power_after: on,
                });
                (on, modulator.contrast_ratio())
            }
            TransmitterKind::Vcsel => {
                let laser = self.vcsel.as_ref().expect("VCSEL path has a laser");
                let im = laser.modulation_at_scale(supply_ratio);
                let one = laser.emitted_power(laser.bias() + im);
                stages.push(BudgetStage {
                    name: format!("VCSEL 1-level (supply ×{supply_ratio:.2})"),
                    power_after: one,
                });
                (one, laser.contrast_ratio(im))
            }
        };
        let coupled = signal.attenuate(self.coupling_loss);
        if self.coupling_loss.as_db() > 0.0 {
            stages.push(BudgetStage {
                name: "coupling".into(),
                power_after: coupled,
            });
        }
        let after_fiber = coupled.attenuate(self.fiber_loss);
        stages.push(BudgetStage {
            name: "fiber".into(),
            power_after: after_fiber,
        });
        let at_detector = after_fiber.attenuate(self.connector_loss);
        stages.push(BudgetStage {
            name: "connectors → detector".into(),
            power_after: at_detector,
        });
        // Average received power for the eye analysis: mean of 1/0 levels.
        let avg = at_detector * (0.5 * (1.0 + 1.0 / contrast));
        let margin = self.eye.margin(avg, contrast, br);
        BudgetReport {
            bit_rate: br,
            stages,
            margin,
            closes: margin.as_db() >= 0.0,
        }
    }

    /// The highest rate that closes at the given optical level / supply
    /// ratio, scanning the paper's band edges and ladder levels. `None`
    /// if even 3.3 Gb/s fails.
    pub fn max_closing_rate(&self, level: OpticalLevel, supply_ratio: f64) -> Option<Gbps> {
        let mut best = None;
        for g in [3.3, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            let rate = Gbps::from_gbps(g);
            if self.evaluate(rate, level, supply_ratio).closes {
                best = Some(rate);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mqw_closes_at_full_rate_high_level() {
        let b = LinkBudget::paper_mqw();
        let report = b.evaluate(Gbps::from_gbps(10.0), OpticalLevel::High, 1.0);
        assert!(report.closes, "{report}");
        assert!(report.stages.len() >= 4);
        // Power decreases monotonically along the path.
        for w in report.stages.windows(2) {
            assert!(w[1].power_after <= w[0].power_after);
        }
    }

    #[test]
    fn mqw_levels_gate_rates_like_the_paper_bands() {
        // The physical justification for §3.2.2's banding: each optical
        // level closes its own bit-rate band and not the next one up.
        // Measured: Low closes through ~3.3–4 Gb/s (paper band < 4),
        // Mid through ~6 (paper 4–6), High through 10 (paper 6–10).
        let b = LinkBudget::paper_mqw();
        let low_max = b.max_closing_rate(OpticalLevel::Low, 1.0).unwrap().as_gbps();
        let mid_max = b.max_closing_rate(OpticalLevel::Mid, 1.0).unwrap().as_gbps();
        let high_max = b.max_closing_rate(OpticalLevel::High, 1.0).unwrap().as_gbps();
        assert!((3.3..5.0).contains(&low_max), "low band top {low_max}");
        assert!((5.0..8.0).contains(&mid_max), "mid band top {mid_max}");
        assert!((high_max - 10.0).abs() < 1e-9, "high band top {high_max}");
    }

    #[test]
    fn vcsel_scaled_supply_still_closes_at_scaled_rate() {
        // The §2.3 co-design claim: halving swing (light) while halving
        // rate (sensitivity) keeps the link closed.
        let b = LinkBudget::paper_vcsel();
        let full = b.evaluate(Gbps::from_gbps(10.0), OpticalLevel::High, 1.0);
        let half = b.evaluate(Gbps::from_gbps(5.0), OpticalLevel::High, 0.5);
        assert!(full.closes, "{full}");
        assert!(half.closes, "{half}");
    }

    #[test]
    fn vcsel_half_swing_fails_at_full_rate() {
        // …but a half-swing VCSEL cannot drive the full rate: less light
        // AND lower contrast against an unchanged sensitivity requirement.
        let b = LinkBudget::paper_vcsel();
        let report = b.evaluate(Gbps::from_gbps(10.0), OpticalLevel::High, 0.35);
        assert!(!report.closes, "{report}");
        // …while the same swing comfortably closes the 5 Gb/s floor.
        let at_floor = b.evaluate(Gbps::from_gbps(5.0), OpticalLevel::High, 0.35);
        assert!(at_floor.closes, "{at_floor}");
    }

    #[test]
    fn report_display_is_readable() {
        let b = LinkBudget::paper_mqw();
        let text = b
            .evaluate(Gbps::from_gbps(7.0), OpticalLevel::High, 1.0)
            .to_string();
        assert!(text.contains("link budget"));
        assert!(text.contains("modulator"));
        assert!(text.contains("margin"));
    }
}
