//! Whole-link calibrated power model (paper Table 2).
//!
//! The network simulator integrates link power from this model: each
//! component carries its measured power at the calibration operating point
//! (10 Gb/s, 1.8 V in the paper) plus a [`ScalingTrend`], and the link sums
//! component powers at whatever operating point the power-aware policy has
//! currently set.

use crate::scaling::ScalingTrend;
use crate::units::{Gbps, MilliWatts, Volts};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a link component in power breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentId {
    /// The VCSEL laser diode.
    Vcsel,
    /// The VCSEL's inverter-chain driver.
    VcselDriver,
    /// The MQW modulator's inverter-chain driver.
    ModulatorDriver,
    /// The MQW modulator itself (absorbed-light dissipation).
    Modulator,
    /// The receiver photodetector.
    Photodetector,
    /// The transimpedance amplifier.
    Tia,
    /// The clock-and-data-recovery circuit.
    Cdr,
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentId::Vcsel => "VCSEL",
            ComponentId::VcselDriver => "VCSEL driver",
            ComponentId::ModulatorDriver => "Modulator driver",
            ComponentId::Modulator => "Modulator",
            ComponentId::Photodetector => "Photodetector",
            ComponentId::Tia => "TIA",
            ComponentId::Cdr => "CDR",
        };
        f.write_str(s)
    }
}

/// Which transmitter technology a link uses (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransmitterKind {
    /// Directly-modulated VCSEL: both bit rate and voltage scale.
    Vcsel,
    /// External laser + MQW modulator: driver supply is fixed; optical
    /// power is stepped by external attenuators.
    MqwModulator,
}

impl fmt::Display for TransmitterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransmitterKind::Vcsel => f.write_str("VCSEL"),
            TransmitterKind::MqwModulator => f.write_str("MQW modulator"),
        }
    }
}

/// A link operating point: bit rate plus the (scaled) supply voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    bit_rate: Gbps,
    vdd: Volts,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if the bit rate or voltage is not strictly positive.
    pub fn new(bit_rate: Gbps, vdd: Volts) -> Self {
        assert!(bit_rate.as_gbps() > 0.0, "bit rate must be positive");
        assert!(vdd.as_v() > 0.0, "supply voltage must be positive");
        OperatingPoint { bit_rate, vdd }
    }

    /// The paper's maximum operating point: 10 Gb/s at 1.8 V.
    pub fn paper_max() -> Self {
        OperatingPoint::new(Gbps::from_gbps(10.0), Volts::from_v(1.8))
    }

    /// The paper's voltage-scaling rule: Vdd tracks bit rate linearly
    /// (1.8 V at 10 Gb/s → 0.9 V at 5 Gb/s).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    pub fn paper_at_gbps(gbps: f64) -> Self {
        assert!(gbps > 0.0, "bit rate must be positive");
        OperatingPoint::new(Gbps::from_gbps(gbps), Volts::from_v(1.8 * gbps / 10.0))
    }

    /// The bit rate.
    pub fn bit_rate(&self) -> Gbps {
        self.bit_rate
    }

    /// The supply voltage.
    pub fn vdd(&self) -> Volts {
        self.vdd
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.bit_rate, self.vdd)
    }
}

/// One calibrated component: nominal power at the calibration point plus
/// its scaling trend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedComponent {
    id: ComponentId,
    nominal: MilliWatts,
    trend: ScalingTrend,
}

impl CalibratedComponent {
    /// Creates a calibrated component.
    ///
    /// # Panics
    ///
    /// Panics if the nominal power is negative.
    pub fn new(id: ComponentId, nominal: MilliWatts, trend: ScalingTrend) -> Self {
        assert!(nominal.as_mw() >= 0.0, "nominal power must be non-negative");
        CalibratedComponent { id, nominal, trend }
    }

    /// The component's identity.
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// Nominal power at the calibration point.
    pub fn nominal(&self) -> MilliWatts {
        self.nominal
    }

    /// The scaling trend.
    pub fn trend(&self) -> ScalingTrend {
        self.trend
    }

    /// Power at voltage/bit-rate ratios relative to the calibration point.
    pub fn power_at_ratio(&self, v: f64, b: f64) -> MilliWatts {
        self.nominal * self.trend.factor(v, b)
    }
}

/// A whole link's calibrated power model: transmitter + receiver component
/// stack, anchored at a calibration operating point.
///
/// # Example
///
/// Evaluate the paper's Table 2 VCSEL link at full rate and at a scaled
/// operating point, and split the total into per-component terms (the
/// breakdown the `lumen-core` telemetry trace exports every window):
///
/// ```
/// use lumen_opto::link::OperatingPoint;
/// use lumen_opto::presets::paper_vcsel_link;
///
/// let model = paper_vcsel_link();
/// let full = model.max_power();
/// let scaled = model.power(OperatingPoint::paper_at_gbps(2.5));
/// // Rate + voltage scaling shrinks link power super-linearly (V²B terms
/// // dominate at the top of the ladder), but never to zero: the
/// // receiver's bias-style terms scale weakly (paper §2.3).
/// assert!(scaled.as_mw() < 0.25 * full.as_mw());
/// assert!(scaled.as_mw() > 0.01 * full.as_mw());
///
/// // The component breakdown always sums back to the total.
/// let parts = model.breakdown(model.calibration());
/// let sum: f64 = parts.iter().map(|(_, p)| p.as_mw()).sum();
/// assert!((sum - full.as_mw()).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkPowerModel {
    transmitter: TransmitterKind,
    calibration: OperatingPoint,
    components: Vec<CalibratedComponent>,
}

impl LinkPowerModel {
    /// Creates a link model from its component stack.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(
        transmitter: TransmitterKind,
        calibration: OperatingPoint,
        components: Vec<CalibratedComponent>,
    ) -> Self {
        assert!(!components.is_empty(), "a link needs at least one component");
        LinkPowerModel {
            transmitter,
            calibration,
            components,
        }
    }

    /// The transmitter technology.
    pub fn transmitter(&self) -> TransmitterKind {
        self.transmitter
    }

    /// The calibration operating point.
    pub fn calibration(&self) -> OperatingPoint {
        self.calibration
    }

    /// The component stack.
    pub fn components(&self) -> &[CalibratedComponent] {
        &self.components
    }

    /// Ratios (voltage, bit rate) of an operating point relative to the
    /// calibration point.
    fn ratios(&self, op: OperatingPoint) -> (f64, f64) {
        (
            op.vdd() / self.calibration.vdd(),
            op.bit_rate() / self.calibration.bit_rate(),
        )
    }

    /// Total link power at an operating point.
    pub fn power(&self, op: OperatingPoint) -> MilliWatts {
        let (v, b) = self.ratios(op);
        self.components
            .iter()
            .map(|c| c.power_at_ratio(v, b))
            .sum()
    }

    /// Power at the calibration (maximum) point — the non-power-aware
    /// baseline per link.
    pub fn max_power(&self) -> MilliWatts {
        self.power(self.calibration)
    }

    /// Per-component power breakdown at an operating point.
    pub fn breakdown(&self, op: OperatingPoint) -> Vec<(ComponentId, MilliWatts)> {
        let (v, b) = self.ratios(op);
        self.components
            .iter()
            .map(|c| (c.id(), c.power_at_ratio(v, b)))
            .collect()
    }

    /// Power of a single component at an operating point, if present.
    pub fn component_power(&self, id: ComponentId, op: OperatingPoint) -> Option<MilliWatts> {
        let (v, b) = self.ratios(op);
        self.components
            .iter()
            .find(|c| c.id() == id)
            .map(|c| c.power_at_ratio(v, b))
    }

    /// Fraction of the maximum power consumed at `op` (the paper's
    /// normalized-power metric, per link).
    pub fn normalized_power(&self, op: OperatingPoint) -> f64 {
        self.power(op) / self.max_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn operating_point_paper_rule() {
        let op = OperatingPoint::paper_at_gbps(5.0);
        assert!((op.vdd().as_v() - 0.9).abs() < 1e-12);
        assert!((op.bit_rate().as_gbps() - 5.0).abs() < 1e-12);
        let max = OperatingPoint::paper_max();
        assert!((max.vdd().as_v() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn vcsel_link_table2_total() {
        let link = presets::paper_vcsel_link();
        assert!((link.max_power().as_mw() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn modulator_link_table2_total() {
        let link = presets::paper_modulator_link();
        assert!((link.max_power().as_mw() - 290.0).abs() < 1e-9);
    }

    #[test]
    fn vcsel_link_half_rate_near_paper_value() {
        // Paper §4.1: ~61.25 mW at 5 Gb/s (our exact Table-2 arithmetic
        // gives 60.0; see DESIGN.md calibration note).
        let link = presets::paper_vcsel_link();
        let p = link.power(OperatingPoint::paper_at_gbps(5.0));
        assert!((p.as_mw() - 60.0).abs() < 1e-9, "{p}");
        // ≈80% savings as the paper states.
        let savings = 1.0 - link.normalized_power(OperatingPoint::paper_at_gbps(5.0));
        assert!(savings > 0.75 && savings < 0.85, "savings {savings}");
    }

    #[test]
    fn vcsel_link_at_3_3_gbps_over_90pct_savings() {
        // Paper §4.3.1: >90% savings achievable with a 3.3 Gb/s floor.
        let link = presets::paper_vcsel_link();
        let norm = link.normalized_power(OperatingPoint::paper_at_gbps(3.3));
        assert!(norm < 0.10, "normalized power {norm}");
    }

    #[test]
    fn modulator_link_scales_worse_than_vcsel() {
        // The fixed-supply modulator driver only scales with BR, so the
        // MQW link retains more power at low rates (paper Fig. 6(d)).
        let v = presets::paper_vcsel_link();
        let m = presets::paper_modulator_link();
        let op = OperatingPoint::paper_at_gbps(5.0);
        assert!(m.normalized_power(op) > v.normalized_power(op));
    }

    #[test]
    fn breakdown_sums_to_total() {
        let link = presets::paper_vcsel_link();
        let op = OperatingPoint::paper_at_gbps(7.0);
        let sum: MilliWatts = link.breakdown(op).into_iter().map(|(_, p)| p).sum();
        assert!((sum.as_mw() - link.power(op).as_mw()).abs() < 1e-9);
    }

    #[test]
    fn component_power_lookup() {
        let link = presets::paper_vcsel_link();
        let op = OperatingPoint::paper_max();
        let cdr = link.component_power(ComponentId::Cdr, op).unwrap();
        assert!((cdr.as_mw() - 150.0).abs() < 1e-9);
        assert!(link.component_power(ComponentId::ModulatorDriver, op).is_none());
    }

    #[test]
    fn normalized_power_at_max_is_one() {
        let link = presets::paper_modulator_link();
        assert!((link.normalized_power(OperatingPoint::paper_max()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn property_power_monotone_in_rate_and_voltage() {
        // At the paper's linear voltage rule, link power must rise
        // strictly with bit rate for both technologies.
        for link in [presets::paper_vcsel_link(), presets::paper_modulator_link()] {
            let mut last = -1.0;
            let mut g = 3.3;
            while g <= 10.0 {
                let p = link.power(OperatingPoint::paper_at_gbps(g)).as_mw();
                assert!(p > last, "{} not monotone at {g} Gb/s", link.transmitter());
                last = p;
                g += 0.05;
            }
        }
    }

    #[test]
    fn property_component_sum_never_exceeds_max() {
        for link in [presets::paper_vcsel_link(), presets::paper_modulator_link()] {
            let max = link.max_power().as_mw();
            let mut g = 3.3;
            while g <= 10.0 {
                let p = link.power(OperatingPoint::paper_at_gbps(g)).as_mw();
                assert!(p <= max + 1e-9);
                assert!(p > 0.0);
                g += 0.1;
            }
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(TransmitterKind::Vcsel.to_string(), "VCSEL");
        assert_eq!(ComponentId::Tia.to_string(), "TIA");
        let op = OperatingPoint::paper_max();
        assert!(op.to_string().contains("Gb/s"));
    }
}
