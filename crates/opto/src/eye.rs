//! Eye-diagram margin analysis.
//!
//! Section 2.3 of the paper argues qualitatively about which knobs may be
//! scaled: modulator-driver voltage scaling "degrades the contrast ratio
//! making it harder to detect the data", while VCSEL links "maintain
//! acceptable BER by carefully balancing the impact of lower light
//! intensity". This module makes those arguments quantitative with the
//! standard link-budget penalties:
//!
//! - **Extinction-ratio penalty** — a finite contrast ratio `re` wastes
//!   average power relative to an ideal on/off signal:
//!   `ER penalty = (re + 1) / (re − 1)` (linear).
//! - **Inter-symbol interference** — a link whose analog bandwidth `B` is
//!   marginal for bit rate `BR` closes the eye by a factor modeled with
//!   the usual single-pole settling expression
//!   `1 − 2·exp(−π·B/BR · ln2 ...)` simplified to an exponential eye
//!   closure in `B/BR`.
//! - **Eye margin** — received OMA over the required OMA at sensitivity,
//!   after penalties, expressed in dB.
//!
//! [`EyeAnalysis`] combines these with the receiver sensitivity model so
//! callers can ask: *does this operating point close the link, and with
//! how much margin?*

use crate::sensitivity::SensitivityModel;
use crate::units::{Decibels, Gbps, MicroWatts};
use serde::{Deserialize, Serialize};

/// Extinction-ratio power penalty (linear factor ≥ 1) for a contrast
/// ratio `re` between the 1- and 0-levels.
///
/// # Panics
///
/// Panics unless `re > 1`.
pub fn extinction_ratio_penalty(re: f64) -> f64 {
    assert!(re > 1.0, "contrast ratio must exceed 1, got {re}");
    (re + 1.0) / (re - 1.0)
}

/// Fraction of the eye that remains open (0–1) when a channel of analog
/// bandwidth `bandwidth` carries bit rate `br`, using a single-pole
/// settling model: the signal reaches `1 − exp(−2π·B·T_bit)` of its final
/// value within a bit time, and the residual closes the eye from both
/// rails.
///
/// # Panics
///
/// Panics if either rate is non-positive.
pub fn isi_eye_opening(bandwidth: Gbps, br: Gbps) -> f64 {
    assert!(bandwidth.as_gbps() > 0.0, "bandwidth must be positive");
    assert!(br.as_gbps() > 0.0, "bit rate must be positive");
    let settled = 1.0 - (-2.0 * std::f64::consts::PI * bandwidth.as_gbps() / br.as_gbps()).exp();
    (2.0 * settled - 1.0).max(0.0)
}

/// A complete eye/margin analysis for one receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EyeAnalysis {
    sensitivity: SensitivityModel,
    /// Receiver chain analog bandwidth at the full-rate operating point.
    bandwidth_at_max: Gbps,
    /// Whether the bandwidth scales with the configured bit rate (a TIA
    /// whose bias current tracks `BRmax`, paper Eq. 7) or stays fixed.
    bandwidth_tracks_rate: bool,
}

impl EyeAnalysis {
    /// Creates an analysis around a sensitivity model.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is non-positive.
    pub fn new(
        sensitivity: SensitivityModel,
        bandwidth_at_max: Gbps,
        bandwidth_tracks_rate: bool,
    ) -> Self {
        assert!(bandwidth_at_max.as_gbps() > 0.0, "bandwidth must be positive");
        EyeAnalysis {
            sensitivity,
            bandwidth_at_max,
            bandwidth_tracks_rate,
        }
    }

    /// The paper's receiver: 25 µW sensitivity at 10 Gb/s, a 7 GHz chain
    /// (0.7 × bit rate, the classic NRZ rule of thumb) whose bias — and
    /// hence bandwidth — scales with the configured rate.
    pub fn paper_default() -> Self {
        EyeAnalysis::new(
            SensitivityModel::paper_default(),
            Gbps::from_gbps(7.0),
            true,
        )
    }

    /// Effective analog bandwidth when the link runs at `br` out of
    /// `br_max` = 10 Gb/s.
    pub fn bandwidth_at(&self, br: Gbps) -> Gbps {
        if self.bandwidth_tracks_rate {
            self.bandwidth_at_max * (br.as_gbps() / 10.0)
        } else {
            self.bandwidth_at_max
        }
    }

    /// Eye margin in dB for `received` average optical power with contrast
    /// ratio `re` at bit rate `br`: received OMA (after the ER penalty and
    /// ISI closure) over the OMA needed at sensitivity. Non-negative
    /// margin means the link closes.
    ///
    /// # Panics
    ///
    /// Panics if the received power is non-positive or `re ≤ 1`.
    pub fn margin(&self, received: MicroWatts, re: f64, br: Gbps) -> Decibels {
        assert!(received.as_uw() > 0.0, "received power must be positive");
        let penalty = extinction_ratio_penalty(re);
        let opening = self.isi_opening_at(br);
        let effective = received.as_uw() / penalty * opening;
        let required = self.sensitivity.required(br).as_uw();
        Decibels::from_linear(effective / required)
    }

    /// The ISI eye opening at `br` given the (possibly rate-tracking)
    /// bandwidth.
    pub fn isi_opening_at(&self, br: Gbps) -> f64 {
        isi_eye_opening(self.bandwidth_at(br), br)
    }

    /// Whether the link closes (margin ≥ 0 dB) at the operating point.
    pub fn closes(&self, received: MicroWatts, re: f64, br: Gbps) -> bool {
        self.margin(received, re, br).as_db() >= 0.0
    }

    /// The minimum contrast ratio that still closes the link for a given
    /// received power and bit rate (bisection over `re`), or `None` if
    /// even an infinite contrast cannot close it.
    pub fn min_contrast(&self, received: MicroWatts, br: Gbps) -> Option<f64> {
        if !self.closes(received, 1e9, br) {
            return None;
        }
        let (mut lo, mut hi): (f64, f64) = (1.0 + 1e-6, 1e9);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.closes(received, mid, br) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_penalty_limits() {
        // Infinite extinction → no penalty; re = 3 → factor 2.
        assert!((extinction_ratio_penalty(1e12) - 1.0).abs() < 1e-9);
        assert!((extinction_ratio_penalty(3.0) - 2.0).abs() < 1e-12);
        // Worse contrast, bigger penalty.
        assert!(extinction_ratio_penalty(2.0) > extinction_ratio_penalty(10.0));
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn er_penalty_rejects_unity() {
        let _ = extinction_ratio_penalty(1.0);
    }

    #[test]
    fn isi_opening_behaviour() {
        // Plenty of bandwidth: essentially fully open.
        assert!(isi_eye_opening(Gbps::from_gbps(20.0), Gbps::from_gbps(10.0)) > 0.999);
        // Starved bandwidth: eye collapses toward zero.
        let tight = isi_eye_opening(Gbps::from_gbps(0.5), Gbps::from_gbps(10.0));
        assert!(tight < 0.6, "opening {tight}");
        // Monotone in bandwidth.
        let a = isi_eye_opening(Gbps::from_gbps(5.0), Gbps::from_gbps(10.0));
        let b = isi_eye_opening(Gbps::from_gbps(7.0), Gbps::from_gbps(10.0));
        assert!(b > a);
    }

    #[test]
    fn paper_link_closes_at_sensitivity_with_margin_to_spare() {
        let eye = EyeAnalysis::paper_default();
        // 2× the sensitivity with a healthy 10:1 contrast closes easily.
        assert!(eye.closes(MicroWatts::from_uw(50.0), 10.0, Gbps::from_gbps(10.0)));
        // Exactly at sensitivity with mediocre contrast does not: the ER
        // penalty eats the margin.
        assert!(!eye.closes(MicroWatts::from_uw(25.0), 3.0, Gbps::from_gbps(10.0)));
    }

    #[test]
    fn margin_improves_at_lower_rates_with_proportional_light() {
        // The power-aware co-design point: halving rate and halving light
        // keeps the margin (sensitivity halves too).
        let eye = EyeAnalysis::paper_default();
        let full = eye.margin(MicroWatts::from_uw(50.0), 10.0, Gbps::from_gbps(10.0));
        let half = eye.margin(MicroWatts::from_uw(25.0), 10.0, Gbps::from_gbps(5.0));
        assert!((full.as_db() - half.as_db()).abs() < 0.1, "{full} vs {half}");
    }

    #[test]
    fn fixed_bandwidth_receiver_gains_margin_at_low_rate() {
        // If the receiver chain keeps its full-rate bandwidth, slower bits
        // settle more completely → wider eye.
        let fixed = EyeAnalysis::new(
            SensitivityModel::paper_default(),
            Gbps::from_gbps(7.0),
            false,
        );
        let open_10g = fixed.isi_opening_at(Gbps::from_gbps(10.0));
        let open_5g = fixed.isi_opening_at(Gbps::from_gbps(5.0));
        assert!(open_5g > open_10g);
    }

    #[test]
    fn min_contrast_is_tight() {
        let eye = EyeAnalysis::paper_default();
        let re = eye
            .min_contrast(MicroWatts::from_uw(50.0), Gbps::from_gbps(10.0))
            .expect("closable");
        assert!(re > 1.0);
        // Just above the bound closes; well below does not.
        assert!(eye.closes(MicroWatts::from_uw(50.0), re * 1.01, Gbps::from_gbps(10.0)));
        assert!(!eye.closes(MicroWatts::from_uw(50.0), 1.0 + (re - 1.0) * 0.5, Gbps::from_gbps(10.0)));
    }

    #[test]
    fn uncloseable_link_reports_none() {
        let eye = EyeAnalysis::paper_default();
        // 1 µW at 10 Gb/s: hopeless at any contrast.
        assert_eq!(eye.min_contrast(MicroWatts::from_uw(1.0), Gbps::from_gbps(10.0)), None);
    }
}
