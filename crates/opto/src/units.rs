//! Typed physical units.
//!
//! Thin `f64` newtypes that keep milliwatts, volts, milliamps, bit rates and
//! decibel quantities from being mixed up in the power models. Arithmetic is
//! provided only where physically meaningful (power adds; voltage × current
//! gives power; dB losses add; etc.).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! base_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Raw numeric value in the unit named by the type.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the smaller of two values.
            pub fn min(self, rhs: $name) -> $name {
                $name(self.0.min(rhs.0))
            }

            /// Returns the larger of two values.
            pub fn max(self, rhs: $name) -> $name {
                $name(self.0.max(rhs.0))
            }

            /// Absolute value.
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4}", $suffix), self.0)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            type Output = f64;
            /// Dimensionless ratio of two like quantities.
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                iter.fold($name::ZERO, Add::add)
            }
        }
    };
}

base_unit!(
    /// Electrical or dissipated power in milliwatts.
    MilliWatts,
    "mW"
);

base_unit!(
    /// Optical power in microwatts (receiver-side light levels are tens of µW).
    MicroWatts,
    "uW"
);

base_unit!(
    /// Electric potential in volts.
    Volts,
    "V"
);

base_unit!(
    /// Electric current in milliamps.
    MilliAmps,
    "mA"
);

base_unit!(
    /// Link bit rate in gigabits per second.
    Gbps,
    "Gb/s"
);

base_unit!(
    /// A logarithmic power ratio in decibels (used for optical losses).
    Decibels,
    "dB"
);

impl MilliWatts {
    /// Constructs from milliwatts.
    pub const fn from_mw(mw: f64) -> Self {
        MilliWatts(mw)
    }

    /// The value in milliwatts.
    pub const fn as_mw(self) -> f64 {
        self.0
    }

    /// The value in watts.
    pub fn as_watts(self) -> f64 {
        self.0 / 1e3
    }

    /// Converts to microwatts (e.g. for optical power bookkeeping).
    pub fn to_micro(self) -> MicroWatts {
        MicroWatts(self.0 * 1e3)
    }
}

impl MicroWatts {
    /// Constructs from microwatts.
    pub const fn from_uw(uw: f64) -> Self {
        MicroWatts(uw)
    }

    /// The value in microwatts.
    pub const fn as_uw(self) -> f64 {
        self.0
    }

    /// Converts to milliwatts.
    pub fn to_milli(self) -> MilliWatts {
        MilliWatts(self.0 / 1e3)
    }

    /// Expresses this power relative to 1 mW, in dBm.
    ///
    /// # Panics
    ///
    /// Panics if the power is not strictly positive.
    pub fn as_dbm(self) -> Decibels {
        assert!(self.0 > 0.0, "dBm undefined for non-positive power");
        Decibels(10.0 * (self.0 / 1e3).log10())
    }

    /// Constructs an optical power from a dBm level.
    pub fn from_dbm(dbm: Decibels) -> Self {
        MicroWatts(1e3 * 10f64.powf(dbm.value() / 10.0))
    }

    /// Attenuates this power by a positive dB loss.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is negative.
    pub fn attenuate(self, loss: Decibels) -> MicroWatts {
        assert!(loss.value() >= 0.0, "attenuation must be non-negative");
        MicroWatts(self.0 * 10f64.powf(-loss.value() / 10.0))
    }
}

impl Volts {
    /// Constructs from volts.
    pub const fn from_v(v: f64) -> Self {
        Volts(v)
    }

    /// The value in volts.
    pub const fn as_v(self) -> f64 {
        self.0
    }
}

impl MilliAmps {
    /// Constructs from milliamps.
    pub const fn from_ma(ma: f64) -> Self {
        MilliAmps(ma)
    }

    /// The value in milliamps.
    pub const fn as_ma(self) -> f64 {
        self.0
    }
}

impl Gbps {
    /// Constructs from Gb/s.
    pub const fn from_gbps(g: f64) -> Self {
        Gbps(g)
    }

    /// The value in Gb/s.
    pub const fn as_gbps(self) -> f64 {
        self.0
    }

    /// The value in bits per second.
    pub fn as_bits_per_sec(self) -> f64 {
        self.0 * 1e9
    }

    /// Time to serialize `bits` at this rate, in picoseconds (rounded).
    ///
    /// # Panics
    ///
    /// Panics if the bit rate is not strictly positive.
    pub fn serialization_ps(self, bits: u32) -> u64 {
        assert!(self.0 > 0.0, "bit rate must be positive");
        // bits / (Gb/s) = nanoseconds·(bits/Gb) → ps = 1000·bits/rate
        (bits as f64 * 1000.0 / self.0).round() as u64
    }
}

impl Decibels {
    /// Constructs from a dB value.
    pub const fn from_db(db: f64) -> Self {
        Decibels(db)
    }

    /// The value in dB.
    pub const fn as_db(self) -> f64 {
        self.0
    }

    /// The linear power ratio corresponding to this dB value.
    pub fn as_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Constructs from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    pub fn from_linear(ratio: f64) -> Self {
        assert!(ratio > 0.0, "ratio must be positive for dB conversion");
        Decibels(10.0 * ratio.log10())
    }
}

impl Mul<MilliAmps> for Volts {
    type Output = MilliWatts;
    /// `P = V · I` (volts × milliamps = milliwatts).
    fn mul(self, rhs: MilliAmps) -> MilliWatts {
        MilliWatts(self.0 * rhs.0)
    }
}

impl Mul<Volts> for MilliAmps {
    type Output = MilliWatts;
    fn mul(self, rhs: Volts) -> MilliWatts {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_arithmetic() {
        let a = MilliWatts::from_mw(100.0);
        let b = MilliWatts::from_mw(50.0);
        assert_eq!((a + b).as_mw(), 150.0);
        assert_eq!((a - b).as_mw(), 50.0);
        assert_eq!((a * 2.0).as_mw(), 200.0);
        assert_eq!((a / 4.0).as_mw(), 25.0);
        assert_eq!(a / b, 2.0);
        assert_eq!(a.as_watts(), 0.1);
    }

    #[test]
    fn v_times_i_is_power() {
        let p = Volts::from_v(1.8) * MilliAmps::from_ma(10.0);
        assert!((p.as_mw() - 18.0).abs() < 1e-12);
        let p2 = MilliAmps::from_ma(10.0) * Volts::from_v(1.8);
        assert_eq!(p, p2);
    }

    #[test]
    fn sum_powers() {
        let total: MilliWatts = [30.0, 10.0, 100.0, 150.0]
            .iter()
            .map(|&x| MilliWatts::from_mw(x))
            .sum();
        assert_eq!(total.as_mw(), 290.0);
    }

    #[test]
    fn micro_milli_round_trip() {
        let p = MilliWatts::from_mw(0.025);
        assert!((p.to_micro().as_uw() - 25.0).abs() < 1e-12);
        assert!((MicroWatts::from_uw(25.0).to_milli().as_mw() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn dbm_conversions() {
        // 1 mW = 0 dBm
        let p = MicroWatts::from_uw(1000.0);
        assert!(p.as_dbm().as_db().abs() < 1e-12);
        // 100 µW = -10 dBm
        let p = MicroWatts::from_uw(100.0);
        assert!((p.as_dbm().as_db() + 10.0).abs() < 1e-9);
        let back = MicroWatts::from_dbm(Decibels::from_db(-10.0));
        assert!((back.as_uw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn attenuation() {
        let p = MicroWatts::from_uw(1000.0);
        let out = p.attenuate(Decibels::from_db(3.0));
        assert!((out.as_uw() - 501.187).abs() < 0.01);
        // 1:16 splitting with 13.6 dB max insertion loss (paper footnote 1)
        let split = p.attenuate(Decibels::from_db(13.6));
        assert!(split.as_uw() > 1000.0 / 32.0 && split.as_uw() < 1000.0 / 16.0);
    }

    #[test]
    fn db_linear_round_trip() {
        let db = Decibels::from_db(6.0);
        let lin = db.as_linear();
        assert!((lin - 3.981).abs() < 0.001);
        let back = Decibels::from_linear(lin);
        assert!((back.as_db() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn serialization_time() {
        // 16-bit flit at 10 Gb/s = 1.6 ns = 1600 ps (one router cycle)
        assert_eq!(Gbps::from_gbps(10.0).serialization_ps(16), 1600);
        // at 5 Gb/s it takes two cycles
        assert_eq!(Gbps::from_gbps(5.0).serialization_ps(16), 3200);
        // at 7 Gb/s, a non-integral number of cycles
        assert_eq!(Gbps::from_gbps(7.0).serialization_ps(16), 2286);
    }

    #[test]
    fn min_max_abs() {
        let a = Gbps::from_gbps(5.0);
        let b = Gbps::from_gbps(10.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!((-Decibels::from_db(3.0)).abs().as_db(), 3.0);
    }

    #[test]
    #[should_panic(expected = "dBm undefined")]
    fn dbm_of_zero_panics() {
        let _ = MicroWatts::ZERO.as_dbm();
    }
}
