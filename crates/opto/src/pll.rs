//! Clock synthesis and CDR lock-time modeling.
//!
//! The paper's bit-rate transition delay `Tbr` — 20 router cycles during
//! which the link is disabled — is "set by the bandwidth of the timing
//! recovery loop" (§2.2.3) and was "estimated and extrapolated based on
//! characterizations of prior circuit designs of variable-frequency links"
//! (its refs. [28, 12]). This module makes that estimate a model instead
//! of a constant:
//!
//! - a [`ClockSynthesizer`] produces each ladder rate from a reference
//!   clock through integer multiply/divide settings (the per-level clock
//!   plan a real link chip would program);
//! - lock time follows the standard second-order PLL settling
//!   approximation `T_lock ≈ (ln(1/ε)) / (ζ·ω_n)`, with the natural
//!   frequency tied to the loop bandwidth;
//! - frequency *steps* within the same synthesized band relock faster
//!   than band changes, quantifying the paper's preference for "small
//!   steps … in frequency variations" (§3.2.1).

use crate::units::Gbps;
use serde::{Deserialize, Serialize};

/// An integer multiply/divide setting deriving a bit clock from the
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DividerSetting {
    /// Reference multiplier.
    pub multiply: u32,
    /// Output divider.
    pub divide: u32,
}

impl DividerSetting {
    /// The synthesized frequency for a given reference, in GHz.
    pub fn output_ghz(self, reference_ghz: f64) -> f64 {
        reference_ghz * self.multiply as f64 / self.divide as f64
    }
}

/// A second-order charge-pump PLL clock synthesizer / CDR timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockSynthesizer {
    /// Reference clock, GHz (the paper's 625 MHz router core).
    pub reference_ghz: f64,
    /// Loop natural frequency, MHz.
    pub natural_mhz: f64,
    /// Damping factor ζ (≈ 0.7–1 for a well-behaved loop).
    pub damping: f64,
    /// Settling tolerance ε (fraction of the frequency step considered
    /// "locked", e.g. 1e-3).
    pub tolerance: f64,
}

impl ClockSynthesizer {
    /// A synthesizer in the spirit of the paper's refs. [12, 28]: 625 MHz
    /// reference, ~7 MHz loop bandwidth, ζ = 0.8, 0.1% settling — chosen
    /// so a one-level hop of the 5–10 Gb/s ladder locks in ≈ 20 router
    /// cycles, the paper's `Tbr`.
    pub fn paper_default() -> Self {
        ClockSynthesizer {
            reference_ghz: 0.625,
            natural_mhz: 43.0,
            damping: 0.8,
            tolerance: 1e-3,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters or a tolerance outside `(0, 1)`.
    pub fn validate(&self) {
        assert!(self.reference_ghz > 0.0, "reference must be positive");
        assert!(self.natural_mhz > 0.0, "natural frequency must be positive");
        assert!(self.damping > 0.0, "damping must be positive");
        assert!(
            self.tolerance > 0.0 && self.tolerance < 1.0,
            "tolerance must be in (0,1)"
        );
    }

    /// The integer multiply/divide setting that best approximates `rate`
    /// (searching dividers up to 16 and keeping the multiplier ≤ 64).
    pub fn divider_for(&self, rate: Gbps) -> DividerSetting {
        let target = rate.as_gbps();
        let mut best = DividerSetting {
            multiply: 1,
            divide: 1,
        };
        let mut best_err = f64::INFINITY;
        for divide in 1..=16u32 {
            let multiply =
                (target * divide as f64 / self.reference_ghz).round().clamp(1.0, 64.0) as u32;
            let setting = DividerSetting { multiply, divide };
            let err = (setting.output_ghz(self.reference_ghz) - target).abs();
            if err < best_err {
                best_err = err;
                best = setting;
            }
        }
        best
    }

    /// Frequency synthesis error for the best divider at `rate`, as a
    /// fraction of the target.
    pub fn synthesis_error(&self, rate: Gbps) -> f64 {
        let setting = self.divider_for(rate);
        (setting.output_ghz(self.reference_ghz) - rate.as_gbps()).abs() / rate.as_gbps()
    }

    /// Second-order settling time to within `tolerance`, in nanoseconds:
    /// `T ≈ ln(1/ε) / (ζ · ωn)` with `ωn = 2π · natural_mhz`.
    pub fn lock_time_ns(&self) -> f64 {
        let wn = 2.0 * std::f64::consts::PI * self.natural_mhz * 1e6;
        (1.0 / self.tolerance).ln() / (self.damping * wn) * 1e9
    }

    /// Lock time expressed in router-core cycles of the given period, as
    /// the paper's `Tbr` parameter (rounded up).
    pub fn lock_cycles(&self, core_period_ps: u64) -> u64 {
        let ns = self.lock_time_ns();
        let ps = ns * 1e3;
        (ps / core_period_ps as f64).ceil() as u64
    }

    /// Relock time for a hop between two rates: proportional to the log
    /// of the frequency ratio plus one settling constant — a small
    /// in-band step costs near one settling time, a large swing costs
    /// more (the circuit argument behind the paper's "small steps are
    /// preferred", §3.2.1).
    pub fn relock_cycles(&self, from: Gbps, to: Gbps, core_period_ps: u64) -> u64 {
        let base = self.lock_cycles(core_period_ps) as f64;
        let ratio = (to.as_gbps() / from.as_gbps()).abs().max(1e-9);
        let swing = ratio.ln().abs();
        (base * (1.0 + swing)).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_locks_in_about_20_cycles() {
        let pll = ClockSynthesizer::paper_default();
        pll.validate();
        let tbr = pll.lock_cycles(1600);
        assert!(
            (16..=20).contains(&tbr),
            "lock {tbr} cycles; paper uses Tbr = 20"
        );
    }

    #[test]
    fn dividers_hit_ladder_rates() {
        let pll = ClockSynthesizer::paper_default();
        for gbps in [5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            let err = pll.synthesis_error(Gbps::from_gbps(gbps));
            assert!(err < 0.01, "{gbps} Gb/s synthesis error {err}");
        }
        // 10 Gb/s = 625 MHz × 16.
        let s = pll.divider_for(Gbps::from_gbps(10.0));
        assert!((s.output_ghz(0.625) - 10.0).abs() < 1e-9, "{s:?}");
    }

    #[test]
    fn small_steps_relock_faster_than_big_swings() {
        let pll = ClockSynthesizer::paper_default();
        let step = pll.relock_cycles(Gbps::from_gbps(9.0), Gbps::from_gbps(10.0), 1600);
        let swing = pll.relock_cycles(Gbps::from_gbps(5.0), Gbps::from_gbps(10.0), 1600);
        assert!(step < swing, "step {step} !< swing {swing}");
        // Direction symmetry: up and down cost the same.
        let down = pll.relock_cycles(Gbps::from_gbps(10.0), Gbps::from_gbps(5.0), 1600);
        assert_eq!(swing, down);
    }

    #[test]
    fn tighter_tolerance_locks_slower() {
        let loose = ClockSynthesizer {
            tolerance: 1e-2,
            ..ClockSynthesizer::paper_default()
        };
        let tight = ClockSynthesizer {
            tolerance: 1e-6,
            ..ClockSynthesizer::paper_default()
        };
        assert!(tight.lock_time_ns() > loose.lock_time_ns());
    }

    #[test]
    fn wider_bandwidth_locks_faster() {
        let slow = ClockSynthesizer {
            natural_mhz: 10.0,
            ..ClockSynthesizer::paper_default()
        };
        let fast = ClockSynthesizer {
            natural_mhz: 100.0,
            ..ClockSynthesizer::paper_default()
        };
        assert!(fast.lock_time_ns() < slow.lock_time_ns());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn bad_tolerance_rejected() {
        let mut pll = ClockSynthesizer::paper_default();
        pll.tolerance = 1.5;
        pll.validate();
    }
}
