//! Transimpedance amplifier (paper §2.2.2).
//!
//! The TIA turns the detector's photocurrent `Ip` into a voltage swing
//! `Ip · Rf` via a common-source amplifier with feedback resistance `Rf`.
//! Its usable bandwidth is set by the internal amplifier's bias current
//! (paper Eq. 7, `Ibias = c · BRmax`), and since photocurrent and dark
//! current are negligible next to that bias, its power is (paper Eq. 8):
//!
//! ```text
//! P_TIA = Ibias · Vdd = c · BRmax · Vdd
//! ```
//!
//! Under dynamic control, when the link bit rate drops, `BRmax` can drop
//! with it and the supply can scale too, giving the `Vdd · BR` scaling trend
//! of Table 2. A lower supply also means a smaller required output swing, so
//! less photocurrent — and hence less optical power — suffices.

use crate::units::{Gbps, MilliAmps, MilliWatts, Volts};
use serde::{Deserialize, Serialize};

/// A transimpedance amplifier model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tia {
    /// Bias-current-per-bandwidth constant `c`, in mA per Gb/s.
    bias_ma_per_gbps: f64,
    /// Feedback resistance `Rf` in ohms.
    feedback_ohms: f64,
    /// Required output voltage swing at the nominal supply, as a fraction
    /// of the supply (swing tracks the rail under voltage scaling).
    swing_fraction: f64,
}

impl Tia {
    /// Creates a TIA model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `swing_fraction` exceeds 1.
    pub fn new(bias_ma_per_gbps: f64, feedback_ohms: f64, swing_fraction: f64) -> Self {
        assert!(bias_ma_per_gbps > 0.0, "bias constant must be positive");
        assert!(feedback_ohms > 0.0, "feedback resistance must be positive");
        assert!(
            swing_fraction > 0.0 && swing_fraction <= 1.0,
            "swing fraction must be in (0,1]"
        );
        Tia {
            bias_ma_per_gbps,
            feedback_ohms,
            swing_fraction,
        }
    }

    /// A TIA calibrated so that `power(vdd, br) == target` at the given
    /// operating point (used to match Table 2's 100 mW at 10 Gb/s, 1.8 V).
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    pub fn calibrated(target: MilliWatts, vdd: Volts, br_max: Gbps) -> Self {
        assert!(target.as_mw() > 0.0 && vdd.as_v() > 0.0 && br_max.as_gbps() > 0.0);
        let c = target.as_mw() / vdd.as_v() / br_max.as_gbps();
        Tia::new(c, 500.0, 0.25)
    }

    /// Eq. 7 — amplifier bias current needed to support `br_max`.
    pub fn bias_current(&self, br_max: Gbps) -> MilliAmps {
        MilliAmps::from_ma(self.bias_ma_per_gbps * br_max.as_gbps())
    }

    /// Eq. 8 — power at a given supply and maximum supported bit rate.
    pub fn power(&self, vdd: Volts, br_max: Gbps) -> MilliWatts {
        self.bias_current(br_max) * vdd
    }

    /// Output voltage swing for a given photocurrent: `Ip · Rf`.
    pub fn output_swing(&self, photocurrent: MilliAmps) -> Volts {
        Volts::from_v(photocurrent.as_ma() / 1e3 * self.feedback_ohms)
    }

    /// The photocurrent required to produce the full output swing at supply
    /// `vdd` (swing requirement scales with the rail).
    pub fn required_photocurrent(&self, vdd: Volts) -> MilliAmps {
        let swing = vdd.as_v() * self.swing_fraction;
        MilliAmps::from_ma(swing / self.feedback_ohms * 1e3)
    }

    /// Feedback resistance `Rf` in ohms.
    pub fn feedback_ohms(&self) -> f64 {
        self.feedback_ohms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_hits_table2() {
        let tia = Tia::calibrated(
            MilliWatts::from_mw(100.0),
            Volts::from_v(1.8),
            Gbps::from_gbps(10.0),
        );
        let p = tia.power(Volts::from_v(1.8), Gbps::from_gbps(10.0));
        assert!((p.as_mw() - 100.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn scaling_trend_vdd_br() {
        let tia = Tia::calibrated(
            MilliWatts::from_mw(100.0),
            Volts::from_v(1.8),
            Gbps::from_gbps(10.0),
        );
        let half = tia.power(Volts::from_v(0.9), Gbps::from_gbps(5.0));
        // Vdd·BR trend: (1/2)·(1/2) = 1/4 → 25 mW
        assert!((half.as_mw() - 25.0).abs() < 1e-9, "{half}");
    }

    #[test]
    fn bias_current_linear_in_bandwidth() {
        let tia = Tia::new(5.0, 500.0, 0.25);
        let i10 = tia.bias_current(Gbps::from_gbps(10.0));
        let i5 = tia.bias_current(Gbps::from_gbps(5.0));
        assert!((i10.as_ma() - 50.0).abs() < 1e-12);
        assert!((i10.as_ma() / i5.as_ma() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn output_swing_is_ip_rf() {
        let tia = Tia::new(5.0, 500.0, 0.25);
        // 1 mA through 500 Ω = 0.5 V
        let swing = tia.output_swing(MilliAmps::from_ma(1.0));
        assert!((swing.as_v() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lower_rail_needs_less_photocurrent() {
        // The paper's side benefit: at a lower supply the required swing
        // Ip·Rf shrinks, so less light is needed.
        let tia = Tia::new(5.0, 500.0, 0.25);
        let full = tia.required_photocurrent(Volts::from_v(1.8));
        let half = tia.required_photocurrent(Volts::from_v(0.9));
        assert!((full.as_ma() / half.as_ma() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "swing fraction")]
    fn bad_swing_rejected() {
        let _ = Tia::new(5.0, 500.0, 1.5);
    }
}
