//! Multiple-quantum-well (MQW) electro-absorption modulator (paper §2.1.2).
//!
//! In the external-laser transmitter scheme, continuous light from a central
//! mode-locked laser reaches each link transmitter, where an MQW modulator
//! either absorbs it (0-bit, "off") or passes it (1-bit, "on") depending on
//! the voltage applied by the driver. The modulator is characterized by its
//! insertion loss `IL` (fraction of light lost in the "on" state), contrast
//! ratio `CR` (on/off transmitted power ratio), and capacitance.
//!
//! Power dissipated in the modulator is the absorbed optical power times the
//! photocurrent conversion acting against the applied voltage (paper Eq. 4,
//! equal 1/0 probabilities):
//!
//! ```text
//! P = 0.5 · Rs · PI · [ IL·(Vbias − Vdd)  +  (1 − (1−IL)/CR)·Vbias ]
//! ```
//!
//! where `Rs` is the optical-to-current conversion efficiency, `PI` the
//! input optical power, `Vbias` the bias voltage and `Vdd` the driver
//! supply (a 1-bit applies `Vbias − Vdd`, a 0-bit applies `Vbias`).
//!
//! Crucially for power-aware operation, lowering the driver supply shrinks
//! the voltage swing, which collapses the contrast ratio (paper ref. \[7\]) —
//! so the modulator driver is only *bit-rate* scaled, never voltage scaled.
//! [`MqwModulator::contrast_at_swing`] models that degradation.

use crate::units::{MicroWatts, MilliWatts, Volts};
use serde::{Deserialize, Serialize};

/// An MQW electro-absorption modulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MqwModulator {
    insertion_loss: f64,
    contrast_ratio: f64,
    responsivity_a_per_w: f64,
    bias_voltage: Volts,
    nominal_swing: Volts,
    capacitance_f: f64,
}

impl MqwModulator {
    /// Creates a modulator model.
    ///
    /// * `insertion_loss` — fraction of light absorbed in the "on" state,
    ///   in `(0, 1)`.
    /// * `contrast_ratio` — on/off transmitted-power ratio, `> 1`.
    /// * `responsivity_a_per_w` — optical-to-photocurrent conversion `Rs`.
    /// * `bias_voltage` — reverse bias `Vbias`.
    /// * `nominal_swing` — the driver swing at which `contrast_ratio` holds.
    /// * `capacitance_f` — device capacitance in farads (driver load).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of its physical range.
    pub fn new(
        insertion_loss: f64,
        contrast_ratio: f64,
        responsivity_a_per_w: f64,
        bias_voltage: Volts,
        nominal_swing: Volts,
        capacitance_f: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&insertion_loss) && insertion_loss > 0.0,
            "insertion loss must be in (0,1)"
        );
        assert!(contrast_ratio > 1.0, "contrast ratio must exceed 1");
        assert!(responsivity_a_per_w > 0.0, "responsivity must be positive");
        assert!(bias_voltage.as_v() > 0.0, "bias voltage must be positive");
        assert!(nominal_swing.as_v() > 0.0, "swing must be positive");
        assert!(capacitance_f > 0.0, "capacitance must be positive");
        MqwModulator {
            insertion_loss,
            contrast_ratio,
            responsivity_a_per_w,
            bias_voltage,
            nominal_swing,
            capacitance_f,
        }
    }

    /// A strained InGaAs/InAlAs MQW modulator in the spirit of the paper's
    /// reference \[7\]: ~1 dB on-state loss (≈20%), 10:1 contrast at a 1.8 V
    /// swing, 0.8 A/W conversion.
    pub fn ingaas_10g() -> Self {
        MqwModulator::new(0.2, 10.0, 0.8, Volts::from_v(2.5), Volts::from_v(1.8), 0.3e-12)
    }

    /// On-state insertion loss as a fraction.
    pub fn insertion_loss(&self) -> f64 {
        self.insertion_loss
    }

    /// Nominal contrast ratio.
    pub fn contrast_ratio(&self) -> f64 {
        self.contrast_ratio
    }

    /// Device capacitance in farads.
    pub fn capacitance_f(&self) -> f64 {
        self.capacitance_f
    }

    /// Bias voltage `Vbias`.
    pub fn bias_voltage(&self) -> Volts {
        self.bias_voltage
    }

    /// Transmitted optical power in the "on" (1-bit) state.
    pub fn transmitted_on(&self, input: MicroWatts) -> MicroWatts {
        input * (1.0 - self.insertion_loss)
    }

    /// Transmitted optical power in the "off" (0-bit) state.
    pub fn transmitted_off(&self, input: MicroWatts) -> MicroWatts {
        self.transmitted_on(input) / self.contrast_ratio
    }

    /// Optical power absorbed in the "on" state.
    pub fn absorbed_on(&self, input: MicroWatts) -> MicroWatts {
        input * self.insertion_loss
    }

    /// Optical power absorbed in the "off" state.
    pub fn absorbed_off(&self, input: MicroWatts) -> MicroWatts {
        input * (1.0 - (1.0 - self.insertion_loss) / self.contrast_ratio)
    }

    /// Eq. 4 — average dissipated power with equal 1/0 probabilities, for a
    /// given input optical power and driver supply voltage.
    pub fn average_power(&self, input: MicroWatts, vdd: Volts) -> MilliWatts {
        let rs = self.responsivity_a_per_w;
        let pi_w = input.as_uw() / 1e6;
        let on_term = self.insertion_loss * (self.bias_voltage.as_v() - vdd.as_v()).abs();
        let off_term = (1.0 - (1.0 - self.insertion_loss) / self.contrast_ratio)
            * self.bias_voltage.as_v();
        MilliWatts::from_mw(0.5 * rs * pi_w * (on_term + off_term) * 1e3)
    }

    /// The contrast ratio achieved at a reduced driver swing.
    ///
    /// Electro-absorption contrast falls off steeply as the swing shrinks
    /// (paper ref. \[7\]); we model extinction in dB as proportional to swing,
    /// which makes the linear contrast ratio collapse exponentially — this
    /// is why the paper keeps the modulator driver's supply fixed.
    pub fn contrast_at_swing(&self, swing: Volts) -> f64 {
        let ratio = (swing.as_v() / self.nominal_swing.as_v()).clamp(0.0, 1.0);
        let nominal_db = 10.0 * self.contrast_ratio.log10();
        10f64.powf(nominal_db * ratio / 10.0)
    }

    /// Whether a receiver needing `required_cr` can still detect data when
    /// the driver swing is `swing`.
    pub fn swing_supports(&self, swing: Volts, required_cr: f64) -> bool {
        self.contrast_at_swing(swing) >= required_cr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MqwModulator {
        MqwModulator::ingaas_10g()
    }

    #[test]
    fn energy_conservation_on_state() {
        let input = MicroWatts::from_uw(100.0);
        let t = m().transmitted_on(input);
        let a = m().absorbed_on(input);
        assert!((t.as_uw() + a.as_uw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn energy_conservation_off_state() {
        let input = MicroWatts::from_uw(100.0);
        let t = m().transmitted_off(input);
        let a = m().absorbed_off(input);
        assert!((t.as_uw() + a.as_uw() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn contrast_ratio_definition() {
        let input = MicroWatts::from_uw(50.0);
        let on = m().transmitted_on(input).as_uw();
        let off = m().transmitted_off(input).as_uw();
        assert!((on / off - 10.0).abs() < 1e-9);
    }

    #[test]
    fn off_state_absorbs_more() {
        let input = MicroWatts::from_uw(100.0);
        assert!(m().absorbed_off(input) > m().absorbed_on(input));
    }

    #[test]
    fn average_power_positive_and_linear_in_light() {
        let p1 = m().average_power(MicroWatts::from_uw(100.0), Volts::from_v(1.8));
        let p2 = m().average_power(MicroWatts::from_uw(200.0), Volts::from_v(1.8));
        assert!(p1.as_mw() > 0.0);
        assert!((p2.as_mw() / p1.as_mw() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_magnitude_is_small() {
        // With tens of µW of light, dissipation is well under a milliwatt —
        // consistent with the paper treating it as minor next to the driver.
        let p = m().average_power(MicroWatts::from_uw(50.0), Volts::from_v(1.8));
        assert!(p.as_mw() < 1.0, "{p}");
    }

    #[test]
    fn contrast_degrades_with_swing() {
        let full = m().contrast_at_swing(Volts::from_v(1.8));
        let half = m().contrast_at_swing(Volts::from_v(0.9));
        assert!((full - 10.0).abs() < 1e-9);
        // 10 dB → 5 dB extinction: CR drops from 10 to ~3.16
        assert!((half - 10f64.powf(0.5)).abs() < 1e-9);
        assert!(m().swing_supports(Volts::from_v(1.8), 8.0));
        assert!(!m().swing_supports(Volts::from_v(0.9), 8.0));
    }

    #[test]
    fn contrast_never_below_unity() {
        assert!(m().contrast_at_swing(Volts::ZERO) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "contrast ratio")]
    fn bad_contrast_rejected() {
        let _ = MqwModulator::new(0.2, 0.9, 0.8, Volts::from_v(2.5), Volts::from_v(1.8), 1e-13);
    }
}
