//! Directly-modulated VCSEL transmitter (paper §2.1.1).
//!
//! A vertical-cavity surface-emitting laser emits when driven above its
//! threshold current; to keep stimulated emission stable at high bit rates
//! it is constantly biased above threshold, and the driver adds a modulation
//! current `Im` on top for 1-bits:
//!
//! - Eq. 1 — emitted optical power: `Pe = S · (I − Ith)`
//! - Eq. 2 — average electrical power: `P = (Ibias + Im/2) · Vbias`
//! - Eq. 3 — driver power: `P = α₁ · C_LD · Vdd² · BR` (see
//!   [`InverterChainDriver`])
//!
//! Under dynamic power control, scaling the driver's `Vdd` scales `Im`
//! roughly proportionally, which in turn scales both the VCSEL's electrical
//! power and its emitted light linearly — preserving the contrast ratio, the
//! key advantage of VCSELs for power-aware links (paper §2.3).

use crate::units::{Gbps, MicroWatts, MilliAmps, MilliWatts, Volts};
use serde::{Deserialize, Serialize};

/// A VCSEL device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Vcsel {
    threshold: MilliAmps,
    slope_efficiency_w_per_a: f64,
    bias: MilliAmps,
    bias_voltage: Volts,
    nominal_modulation: MilliAmps,
}

impl Vcsel {
    /// Creates a VCSEL model.
    ///
    /// * `threshold` — lasing threshold current `Ith`.
    /// * `slope_efficiency_w_per_a` — conversion slope `S` (W/A).
    /// * `bias` — standing bias current `Ibias` (must be ≥ threshold so the
    ///   laser stays in stimulated emission).
    /// * `bias_voltage` — forward bias voltage `Vbias`.
    /// * `nominal_modulation` — modulation current `Im` at the full-rate
    ///   operating point.
    ///
    /// # Panics
    ///
    /// Panics if `bias < threshold` or any parameter is non-positive.
    pub fn new(
        threshold: MilliAmps,
        slope_efficiency_w_per_a: f64,
        bias: MilliAmps,
        bias_voltage: Volts,
        nominal_modulation: MilliAmps,
    ) -> Self {
        assert!(threshold.as_ma() > 0.0, "threshold must be positive");
        assert!(
            bias >= threshold,
            "bias {bias} must be at or above threshold {threshold}"
        );
        assert!(slope_efficiency_w_per_a > 0.0, "slope efficiency must be positive");
        assert!(bias_voltage.as_v() > 0.0, "bias voltage must be positive");
        assert!(
            nominal_modulation.as_ma() > 0.0,
            "modulation current must be positive"
        );
        Vcsel {
            threshold,
            slope_efficiency_w_per_a,
            bias,
            bias_voltage,
            nominal_modulation,
        }
    }

    /// An oxide-aperture-confined 1.55 µm VCSEL in the spirit of the paper's
    /// references [10, 18]: sub-mA threshold, ~0.3 W/A slope.
    pub fn oxide_aperture_10g() -> Self {
        Vcsel::new(
            MilliAmps::from_ma(0.5),
            0.3,
            MilliAmps::from_ma(1.0),
            Volts::from_v(1.8),
            MilliAmps::from_ma(10.0),
        )
    }

    /// Lasing threshold current `Ith`.
    pub fn threshold(&self) -> MilliAmps {
        self.threshold
    }

    /// Standing bias current `Ibias`.
    pub fn bias(&self) -> MilliAmps {
        self.bias
    }

    /// Forward bias voltage `Vbias`.
    pub fn bias_voltage(&self) -> Volts {
        self.bias_voltage
    }

    /// Nominal (full-rate) modulation current `Im`.
    pub fn nominal_modulation(&self) -> MilliAmps {
        self.nominal_modulation
    }

    /// Eq. 1 — emitted optical power for a total driving current `i`.
    /// Below threshold the laser emits (approximately) nothing.
    pub fn emitted_power(&self, i: MilliAmps) -> MicroWatts {
        if i <= self.threshold {
            return MicroWatts::ZERO;
        }
        let above_a = (i - self.threshold).as_ma() / 1e3;
        MicroWatts::from_uw(self.slope_efficiency_w_per_a * above_a * 1e9 / 1e3)
    }

    /// Eq. 2 — average electrical power for a given modulation current
    /// (equal 1/0 probabilities): `(Ibias + Im/2) · Vbias`.
    pub fn electrical_power(&self, modulation: MilliAmps) -> MilliWatts {
        (self.bias + modulation / 2.0) * self.bias_voltage
    }

    /// The modulation current when the driver's supply is scaled to
    /// `vdd / vdd_nominal` of its nominal value; `Im` tracks the driver
    /// swing roughly linearly (paper §3.2.2).
    pub fn modulation_at_scale(&self, supply_ratio: f64) -> MilliAmps {
        assert!(
            (0.0..=1.0).contains(&supply_ratio),
            "supply ratio must be in [0,1], got {supply_ratio}"
        );
        self.nominal_modulation * supply_ratio
    }

    /// Optical modulation amplitude: emitted power difference between a
    /// 1-bit (`Ibias + Im`) and a 0-bit (`Ibias`).
    pub fn optical_modulation_amplitude(&self, modulation: MilliAmps) -> MicroWatts {
        let one = self.emitted_power(self.bias + modulation);
        let zero = self.emitted_power(self.bias);
        one - zero
    }

    /// Extinction (contrast) ratio between the 1 and 0 light levels.
    ///
    /// Returns `f64::INFINITY` when the 0-level emits no light.
    pub fn contrast_ratio(&self, modulation: MilliAmps) -> f64 {
        let one = self.emitted_power(self.bias + modulation).as_uw();
        let zero = self.emitted_power(self.bias).as_uw();
        if zero <= 0.0 {
            f64::INFINITY
        } else {
            one / zero
        }
    }
}

/// A CMOS cascaded-inverter driver chain (paper Fig. 2), used both as the
/// VCSEL driver and as the MQW modulator driver.
///
/// Dynamic power follows Eq. 3 / Eq. 5: `P = α · C · Vdd² · BR`, where `α`
/// is the input stream's bit-transition probability and `C` the total
/// switched capacitance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InverterChainDriver {
    switching_activity: f64,
    total_capacitance_f: f64,
    fanout_beta: f64,
    input_capacitance_f: f64,
}

impl InverterChainDriver {
    /// Creates a driver chain model.
    ///
    /// * `switching_activity` — probability of a bit transition (`α`), in
    ///   `[0, 1]`; 0.5 for random data.
    /// * `total_capacitance_f` — total switched capacitance in farads
    ///   (chain + load gate).
    /// * `fanout_beta` — per-stage sizing ratio `β` (typically 3–4).
    /// * `input_capacitance_f` — first-stage input capacitance in farads.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range activity, non-positive capacitances, or
    /// `fanout_beta <= 1`.
    pub fn new(
        switching_activity: f64,
        total_capacitance_f: f64,
        fanout_beta: f64,
        input_capacitance_f: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&switching_activity),
            "switching activity must be in [0,1]"
        );
        assert!(total_capacitance_f > 0.0, "capacitance must be positive");
        assert!(fanout_beta > 1.0, "fanout beta must exceed 1");
        assert!(
            input_capacitance_f > 0.0 && input_capacitance_f <= total_capacitance_f,
            "input capacitance must be positive and at most the total"
        );
        InverterChainDriver {
            switching_activity,
            total_capacitance_f,
            fanout_beta,
            input_capacitance_f,
        }
    }

    /// A driver calibrated so that `P = target` at (`vdd`, `br`); used to
    /// match the paper's Table 2 component powers.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive.
    pub fn calibrated(target: MilliWatts, vdd: Volts, br: Gbps, switching_activity: f64) -> Self {
        assert!(target.as_mw() > 0.0 && vdd.as_v() > 0.0 && br.as_gbps() > 0.0);
        let c = target.as_watts()
            / (switching_activity * vdd.as_v() * vdd.as_v() * br.as_bits_per_sec());
        InverterChainDriver::new(switching_activity, c, 3.5, c / 100.0)
    }

    /// Switching activity `α`.
    pub fn switching_activity(&self) -> f64 {
        self.switching_activity
    }

    /// Total switched capacitance in farads.
    pub fn total_capacitance_f(&self) -> f64 {
        self.total_capacitance_f
    }

    /// Eq. 3 / Eq. 5 — dynamic power at a supply voltage and bit rate.
    pub fn power(&self, vdd: Volts, br: Gbps) -> MilliWatts {
        let w = self.switching_activity
            * self.total_capacitance_f
            * vdd.as_v()
            * vdd.as_v()
            * br.as_bits_per_sec();
        MilliWatts::from_mw(w * 1e3)
    }

    /// Number of inverter stages needed to drive the total load from the
    /// input capacitance at the configured fanout `β`.
    pub fn stage_count(&self) -> u32 {
        let ratio = self.total_capacitance_f / self.input_capacitance_f;
        ratio.ln().div_euclid(self.fanout_beta.ln()).max(0.0) as u32 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laser() -> Vcsel {
        Vcsel::oxide_aperture_10g()
    }

    #[test]
    fn below_threshold_emits_nothing() {
        let v = laser();
        assert_eq!(v.emitted_power(MilliAmps::from_ma(0.3)), MicroWatts::ZERO);
        assert_eq!(v.emitted_power(v.threshold()), MicroWatts::ZERO);
    }

    #[test]
    fn emitted_power_is_linear_above_threshold() {
        let v = laser();
        // 0.3 W/A · (1.5mA - 0.5mA) = 0.3 mW = 300 µW
        let p = v.emitted_power(MilliAmps::from_ma(1.5));
        assert!((p.as_uw() - 300.0).abs() < 1e-9, "{p}");
        // doubling the above-threshold current doubles the light
        let p2 = v.emitted_power(MilliAmps::from_ma(2.5));
        assert!((p2.as_uw() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn electrical_power_eq2() {
        let v = laser();
        // (1mA + 10mA/2) · 1.8V = 10.8 mW
        let p = v.electrical_power(v.nominal_modulation());
        assert!((p.as_mw() - 10.8).abs() < 1e-9, "{p}");
    }

    #[test]
    fn electrical_power_scales_with_modulation() {
        let v = laser();
        let half = v.modulation_at_scale(0.5);
        assert!((half.as_ma() - 5.0).abs() < 1e-12);
        let p_half = v.electrical_power(half);
        let p_full = v.electrical_power(v.nominal_modulation());
        assert!(p_half < p_full);
        // Bias floor remains: power never reaches half even at Im/2.
        assert!(p_half.as_mw() > p_full.as_mw() / 2.0);
    }

    #[test]
    fn contrast_ratio_preserved_under_scaling() {
        let v = laser();
        let cr_full = v.contrast_ratio(v.nominal_modulation());
        let cr_half = v.contrast_ratio(v.modulation_at_scale(0.5));
        assert!(cr_full > cr_half); // lower swing, lower contrast…
        assert!(cr_half > 5.0); // …but still easily detectable
    }

    #[test]
    fn oma_positive_and_monotonic() {
        let v = laser();
        let a = v.optical_modulation_amplitude(MilliAmps::from_ma(5.0));
        let b = v.optical_modulation_amplitude(MilliAmps::from_ma(10.0));
        assert!(a.as_uw() > 0.0);
        assert!(b > a);
    }

    #[test]
    #[should_panic(expected = "bias")]
    fn bias_below_threshold_rejected() {
        let _ = Vcsel::new(
            MilliAmps::from_ma(1.0),
            0.3,
            MilliAmps::from_ma(0.5),
            Volts::from_v(1.8),
            MilliAmps::from_ma(10.0),
        );
    }

    #[test]
    fn driver_power_eq3() {
        // α=0.5, C=1pF, Vdd=1.8V, BR=10Gb/s → 0.5·1e-12·3.24·1e10 = 16.2 mW
        let d = InverterChainDriver::new(0.5, 1e-12, 3.5, 1e-14);
        let p = d.power(Volts::from_v(1.8), Gbps::from_gbps(10.0));
        assert!((p.as_mw() - 16.2).abs() < 1e-9, "{p}");
    }

    #[test]
    fn driver_power_scaling_trend_v2_br() {
        let d = InverterChainDriver::new(0.5, 1e-12, 3.5, 1e-14);
        let full = d.power(Volts::from_v(1.8), Gbps::from_gbps(10.0));
        let half = d.power(Volts::from_v(0.9), Gbps::from_gbps(5.0));
        // V²·BR trend: (1/2)²·(1/2) = 1/8
        assert!((half.as_mw() - full.as_mw() / 8.0).abs() < 1e-9);
    }

    #[test]
    fn calibrated_driver_hits_target() {
        let d = InverterChainDriver::calibrated(
            MilliWatts::from_mw(10.0),
            Volts::from_v(1.8),
            Gbps::from_gbps(10.0),
            0.5,
        );
        let p = d.power(Volts::from_v(1.8), Gbps::from_gbps(10.0));
        assert!((p.as_mw() - 10.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn stage_count_grows_with_load() {
        let small = InverterChainDriver::new(0.5, 1e-13, 3.5, 1e-14);
        let large = InverterChainDriver::new(0.5, 1e-11, 3.5, 1e-14);
        assert!(large.stage_count() > small.stage_count());
        assert!(small.stage_count() >= 1);
    }

    #[test]
    #[should_panic(expected = "switching activity")]
    fn bad_activity_rejected() {
        let _ = InverterChainDriver::new(1.5, 1e-12, 3.5, 1e-14);
    }
}
