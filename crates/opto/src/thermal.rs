//! VCSEL thermal behaviour.
//!
//! Section 2.3 of the paper notes that "the VCSEL output is sensitive to
//! various factors such as temperature and the operating voltage
//! environment, thus requiring additional circuit complexity to stabilize
//! the system" — one of the arguments for the external-laser/MQW scheme,
//! whose heat source lives in its own chassis. This module quantifies the
//! sensitivity with the standard empirical VCSEL model:
//!
//! - threshold current rises parabolically around the design temperature:
//!   `Ith(T) = Ith(T0) + k·(T − Tmin)²`;
//! - slope efficiency degrades linearly with temperature;
//! - the resulting bias margin and output-power derating feed the link
//!   budget.

use crate::units::{MicroWatts, MilliAmps};
use crate::vcsel::Vcsel;
use serde::{Deserialize, Serialize};

/// Empirical thermal model around a VCSEL.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcselThermalModel {
    /// Temperature of minimum threshold (°C), typically near room temp.
    pub t_min_c: f64,
    /// Parabolic threshold coefficient, mA/°C².
    pub threshold_k_ma_per_c2: f64,
    /// Fractional slope-efficiency loss per °C above `t_min_c`.
    pub slope_derate_per_c: f64,
    /// Thermal rollover temperature (°C): no lasing above this.
    pub rollover_c: f64,
}

impl VcselThermalModel {
    /// Typical 1.55 µm oxide-aperture numbers: minimum threshold at 25 °C,
    /// ~0.2 µA/°C² parabola, 0.4%/°C slope derating, rollover at 85 °C.
    pub fn typical_1550nm() -> Self {
        VcselThermalModel {
            t_min_c: 25.0,
            threshold_k_ma_per_c2: 0.0002,
            slope_derate_per_c: 0.004,
            rollover_c: 85.0,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on non-positive coefficients or a rollover at/below `t_min`.
    pub fn validate(&self) {
        assert!(self.threshold_k_ma_per_c2 >= 0.0, "threshold k must be non-negative");
        assert!(
            (0.0..1.0).contains(&self.slope_derate_per_c),
            "slope derating must be a small fraction"
        );
        assert!(self.rollover_c > self.t_min_c, "rollover must exceed t_min");
    }

    /// Threshold current at temperature `t_c` for a laser whose datasheet
    /// threshold holds at `t_min_c`.
    pub fn threshold_at(&self, laser: &Vcsel, t_c: f64) -> MilliAmps {
        let dt = t_c - self.t_min_c;
        laser.threshold() + MilliAmps::from_ma(self.threshold_k_ma_per_c2 * dt * dt)
    }

    /// Slope-efficiency derating factor (0–1) at temperature `t_c`;
    /// zero at/above rollover.
    pub fn slope_factor_at(&self, t_c: f64) -> f64 {
        if t_c >= self.rollover_c {
            return 0.0;
        }
        let dt = (t_c - self.t_min_c).max(0.0);
        (1.0 - self.slope_derate_per_c * dt).max(0.0)
    }

    /// Emitted 1-level power at temperature `t_c` for a drive of
    /// `bias + modulation`, combining threshold shift and slope derating.
    pub fn emitted_at(&self, laser: &Vcsel, modulation: MilliAmps, t_c: f64) -> MicroWatts {
        let ith = self.threshold_at(laser, t_c);
        let drive = laser.bias() + modulation;
        if drive <= ith {
            return MicroWatts::ZERO;
        }
        // Re-derive Eq. 1 with the shifted threshold and derated slope.
        let nominal = laser.emitted_power(drive - (ith - laser.threshold()));
        nominal * self.slope_factor_at(t_c)
    }

    /// Whether the laser still lases (bias above the shifted threshold)
    /// at temperature `t_c`.
    pub fn bias_margin_ok(&self, laser: &Vcsel, t_c: f64) -> bool {
        laser.bias() > self.threshold_at(laser, t_c) && self.slope_factor_at(t_c) > 0.0
    }

    /// The highest temperature at which the given modulation still emits
    /// at least `required` light (1 °C resolution scan up to rollover).
    pub fn max_operating_temp(
        &self,
        laser: &Vcsel,
        modulation: MilliAmps,
        required: MicroWatts,
    ) -> Option<f64> {
        let mut best = None;
        let mut t = self.t_min_c;
        while t <= self.rollover_c {
            if self.emitted_at(laser, modulation, t) >= required {
                best = Some(t);
            }
            t += 1.0;
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VcselThermalModel, Vcsel) {
        (VcselThermalModel::typical_1550nm(), Vcsel::oxide_aperture_10g())
    }

    #[test]
    fn threshold_rises_with_temperature() {
        let (m, laser) = setup();
        m.validate();
        let at25 = m.threshold_at(&laser, 25.0);
        let at70 = m.threshold_at(&laser, 70.0);
        assert_eq!(at25, laser.threshold());
        assert!(at70 > at25);
        // 45°C above minimum: +0.0002·45² = +0.405 mA
        assert!((at70.as_ma() - (0.5 + 0.405)).abs() < 1e-9);
    }

    #[test]
    fn parabola_is_symmetric() {
        let (m, laser) = setup();
        let hot = m.threshold_at(&laser, 45.0);
        let cold = m.threshold_at(&laser, 5.0);
        assert!((hot.as_ma() - cold.as_ma()).abs() < 1e-12);
    }

    #[test]
    fn light_derates_with_temperature() {
        let (m, laser) = setup();
        let im = laser.nominal_modulation();
        let cool = m.emitted_at(&laser, im, 25.0);
        let warm = m.emitted_at(&laser, im, 60.0);
        assert!(warm < cool, "{warm} !< {cool}");
        assert!(warm.as_uw() > 0.0);
    }

    #[test]
    fn rollover_kills_output() {
        let (m, laser) = setup();
        let im = laser.nominal_modulation();
        assert_eq!(m.emitted_at(&laser, im, 90.0), MicroWatts::ZERO);
        assert!(!m.bias_margin_ok(&laser, 90.0));
        assert!(m.bias_margin_ok(&laser, 25.0));
    }

    #[test]
    fn max_operating_temp_is_consistent() {
        let (m, laser) = setup();
        let im = laser.nominal_modulation();
        let need = MicroWatts::from_uw(1_000.0);
        let t = m.max_operating_temp(&laser, im, need).expect("operable");
        assert!(t >= 25.0 && t < 85.0);
        assert!(m.emitted_at(&laser, im, t) >= need);
        assert!(m.emitted_at(&laser, im, t + 2.0) < need);
    }

    #[test]
    fn impossible_requirement_reports_none() {
        let (m, laser) = setup();
        let im = MilliAmps::from_ma(0.1);
        assert_eq!(
            m.max_operating_temp(&laser, im, MicroWatts::from_uw(1e9)),
            None
        );
    }

    #[test]
    #[should_panic(expected = "rollover")]
    fn bad_rollover_rejected() {
        let mut m = VcselThermalModel::typical_1550nm();
        m.rollover_c = 20.0;
        m.validate();
    }
}
