//! The `lumen-dse/1` Pareto report: schema-versioned, deterministic JSON.
//!
//! Everything a reader needs to reproduce or audit a search lands here:
//! the scenario and base seed, both fidelity horizons, every sampled
//! point (decoded knobs, the derived per-point seed it actually ran
//! under, its validated objectives, feasibility and dominated-or-not),
//! and the Table-1 / non-power-aware reference rows at both fidelities.
//! Serialization goes through the vendored `serde_json`, which prints
//! floats as shortest-round-trip strings and rejects non-finite values —
//! together with [`lumen_core::results::RunResult::objectives`] gating every
//! number on the way in, a report is byte-identical across reruns of the
//! same seed and cannot contain `NaN`/`inf`.

use crate::space::PolicyDraw;
use lumen_core::results::Objectives;
use serde::{Deserialize, Serialize};

/// The schema tag every report carries.
pub const DSE_SCHEMA: &str = "lumen-dse/1";

/// One fidelity's simulated horizons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fidelity {
    /// Warmup cycles before measurement.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportPoint {
    /// Trial index within the search (quick trials first, then the
    /// full-fidelity survivor re-evaluations, which repeat the id of the
    /// quick trial they re-run).
    pub id: usize,
    /// `"quick"` or `"full"`.
    pub fidelity: String,
    /// The derived per-point seed the simulation actually ran under.
    pub seed: u64,
    /// The decoded policy knobs.
    pub params: PolicyDraw,
    /// Validated (finite) objectives.
    pub objectives: Objectives,
    /// Whether the delivery constraint held.
    pub feasible: bool,
    /// Whether another point of the same fidelity cohort constrained-
    /// dominates this one.
    pub dominated: bool,
}

/// A reference row (Table 1 or the non-power-aware baseline) at both
/// fidelities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReferenceRow {
    /// Quick-fidelity objectives.
    pub quick: Objectives,
    /// Full-fidelity objectives.
    pub full: Objectives,
}

/// The complete result of one scenario's search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Always [`DSE_SCHEMA`].
    pub schema: String,
    /// Scenario name (`fig5-uniform`, `fig6-hotspot`, `dc-folded-clos`).
    pub scenario: String,
    /// The base seed of the search (per-point seeds derive from it).
    pub base_seed: u64,
    /// The comparison group shared by every point of the scenario
    /// (common random numbers: one traffic realization for all policies).
    pub group: u64,
    /// The delivery-ratio floor applied as a constraint.
    pub min_delivery: f64,
    /// Quick-fidelity horizons.
    pub quick: Fidelity,
    /// Full-fidelity horizons.
    pub full: Fidelity,
    /// The paper's Table 1 policy under this scenario's traffic.
    pub table1: ReferenceRow,
    /// The non-power-aware baseline (links pinned at max rate).
    pub baseline_non_pa: ReferenceRow,
    /// Every evaluated point, quick trials then full survivors.
    pub points: Vec<ReportPoint>,
}

impl DseReport {
    /// The full-fidelity survivor points, in report order.
    pub fn full_points(&self) -> impl Iterator<Item = &ReportPoint> {
        self.points.iter().filter(|p| p.fidelity == "full")
    }

    /// Whether any full-fidelity, feasible, non-dominated point beats
    /// Table 1 on `(normalized power, delivery)`: no worse on both and
    /// strictly better on power. The acceptance question the harness
    /// table answers per scenario.
    pub fn any_policy_dominates_table1(&self) -> bool {
        let t1 = &self.table1.full;
        self.full_points().any(|p| {
            p.feasible
                && !p.dominated
                && p.objectives.normalized_power < t1.normalized_power
                && p.objectives.delivery_ratio >= t1.delivery_ratio
        })
    }

    /// Serializes to the deterministic `lumen-dse/1` JSON string.
    ///
    /// # Panics
    ///
    /// Panics if a non-finite value slipped past objective validation
    /// (the serializer refuses `NaN`/`inf` by design).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report contains only finite numbers")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::PolicyDraw;

    fn objectives(power: f64) -> Objectives {
        Objectives {
            normalized_power: power,
            avg_latency_cycles: 30.0,
            p99_latency_cycles: 60.0,
            p99_saturated: false,
            delivery_ratio: 1.0,
        }
    }

    fn report() -> DseReport {
        DseReport {
            schema: DSE_SCHEMA.into(),
            scenario: "fig5-uniform".into(),
            base_seed: 7,
            group: 0,
            min_delivery: 0.99,
            quick: Fidelity { warmup_cycles: 1000, measure_cycles: 10_000 },
            full: Fidelity { warmup_cycles: 10_000, measure_cycles: 100_000 },
            table1: ReferenceRow { quick: objectives(0.5), full: objectives(0.5) },
            baseline_non_pa: ReferenceRow { quick: objectives(1.0), full: objectives(1.0) },
            points: vec![ReportPoint {
                id: 0,
                fidelity: "full".into(),
                seed: 99,
                params: PolicyDraw::paper_table1(),
                objectives: objectives(0.45),
                feasible: true,
                dominated: false,
            }],
        }
    }

    #[test]
    fn json_round_trips_and_is_deterministic() {
        let r = report();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "same report, same bytes");
        assert!(a.contains("\"schema\""));
        assert!(a.contains("lumen-dse/1"));
        let back: DseReport = serde_json::from_str(&a).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dominance_check_against_table1() {
        let mut r = report();
        assert!(r.any_policy_dominates_table1(), "0.45 < 0.5 at equal delivery");
        r.points[0].objectives.normalized_power = 0.6;
        assert!(!r.any_policy_dominates_table1());
        r.points[0].objectives.normalized_power = 0.45;
        r.points[0].feasible = false;
        assert!(!r.any_policy_dominates_table1(), "infeasible points don't count");
    }
}
