//! Constrained Pareto dominance over the run objectives.
//!
//! The search minimizes `(normalized power, average latency, p99
//! latency)` subject to a delivery-ratio floor. Feasibility is handled by
//! *constrained dominance* (Deb's rule): a feasible point beats every
//! infeasible one, two infeasible points compare by violation, and two
//! feasible points compare by plain Pareto dominance. All comparisons are
//! exact `f64` comparisons on [`lumen_core::results::Objectives`] values that the
//! extraction path has already guaranteed finite, so the ranking is a
//! total deterministic function of the trial set.

use lumen_core::results::Objectives;

/// The objective vector as the minimizer sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Goal {
    /// Normalized power (minimize).
    pub power: f64,
    /// Average latency, cycles (minimize).
    pub avg_latency: f64,
    /// p99 latency, cycles (minimize).
    pub p99_latency: f64,
    /// Delivery-constraint violation: `max(0, min_delivery − delivery)`.
    pub violation: f64,
}

impl Goal {
    /// Builds a goal from validated objectives and the delivery floor.
    pub fn new(obj: &Objectives, min_delivery: f64) -> Goal {
        Goal {
            power: obj.normalized_power,
            avg_latency: obj.avg_latency_cycles,
            p99_latency: obj.p99_latency_cycles,
            violation: (min_delivery - obj.delivery_ratio).max(0.0),
        }
    }

    /// Whether the delivery constraint holds.
    pub fn feasible(&self) -> bool {
        self.violation == 0.0
    }

    fn objectives(&self) -> [f64; 3] {
        [self.power, self.avg_latency, self.p99_latency]
    }

    /// Constrained dominance: does `self` dominate `other`?
    pub fn dominates(&self, other: &Goal) -> bool {
        match (self.feasible(), other.feasible()) {
            (true, false) => true,
            (false, true) => false,
            (false, false) => self.violation < other.violation,
            (true, true) => {
                let (a, b) = (self.objectives(), other.objectives());
                let no_worse = a.iter().zip(&b).all(|(x, y)| x <= y);
                let better = a.iter().zip(&b).any(|(x, y)| x < y);
                no_worse && better
            }
        }
    }
}

/// Non-dominated rank of every goal: rank 0 is the Pareto front, rank 1
/// the front of what remains, and so on. Stable and deterministic for a
/// given input order.
pub fn ranks(goals: &[Goal]) -> Vec<usize> {
    let n = goals.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        let mut front = Vec::new();
        for i in 0..n {
            if rank[i] != usize::MAX {
                continue;
            }
            let dominated = (0..n).any(|j| {
                j != i && rank[j] == usize::MAX && goals[j].dominates(&goals[i])
            });
            if !dominated {
                front.push(i);
            }
        }
        assert!(!front.is_empty(), "dominance must be irreflexive");
        for i in front {
            rank[i] = current;
            assigned += 1;
        }
        current += 1;
    }
    rank
}

/// Indices of the rank-0 (non-dominated) goals, in input order.
pub fn pareto_front(goals: &[Goal]) -> Vec<usize> {
    ranks(goals)
        .into_iter()
        .enumerate()
        .filter_map(|(i, r)| (r == 0).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goal(power: f64, avg: f64, p99: f64) -> Goal {
        Goal {
            power,
            avg_latency: avg,
            p99_latency: p99,
            violation: 0.0,
        }
    }

    #[test]
    fn plain_dominance() {
        let a = goal(0.5, 30.0, 60.0);
        let b = goal(0.6, 35.0, 70.0);
        let c = goal(0.4, 40.0, 60.0); // trades power for latency vs a
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(!a.dominates(&a), "irreflexive");
    }

    #[test]
    fn feasible_beats_infeasible() {
        let ok = goal(0.9, 100.0, 500.0);
        let mut bad = goal(0.1, 10.0, 20.0);
        bad.violation = 0.05;
        assert!(ok.dominates(&bad));
        assert!(!bad.dominates(&ok));
        let mut worse = bad;
        worse.violation = 0.2;
        assert!(bad.dominates(&worse), "smaller violation wins");
    }

    #[test]
    fn ranks_partition_into_fronts() {
        let goals = vec![
            goal(0.5, 30.0, 60.0), // front 0
            goal(0.4, 40.0, 60.0), // front 0 (trade-off)
            goal(0.6, 35.0, 70.0), // dominated by 0
            goal(0.7, 45.0, 90.0), // dominated by 2 as well
        ];
        let r = ranks(&goals);
        assert_eq!(r, vec![0, 0, 1, 2]);
        assert_eq!(pareto_front(&goals), vec![0, 1]);
    }

    #[test]
    fn identical_points_share_a_front() {
        let goals = vec![goal(0.5, 30.0, 60.0); 3];
        assert_eq!(ranks(&goals), vec![0, 0, 0]);
    }
}
