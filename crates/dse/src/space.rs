//! The searchable policy knobs and their encoding.
//!
//! The optimizer works in the unit hypercube `[0,1]^D`: every knob is one
//! dimension with a declared scale (linear, logarithmic, integer, or
//! categorical), and [`SearchSpace::decode`] maps a cube point to a
//! concrete [`PolicyDraw`] that is valid *by construction* — threshold
//! pairs are encoded as `TL` plus a positive gap (so `TL < TH` always
//! holds), the ladder's top rate is pinned to the network's 10 Gb/s link
//! rate (a `SystemConfig::validate` requirement), and integer knobs round
//! half-away from the boundaries so every cube point decodes without
//! panicking. Keeping validity in the encoding, rather than
//! rejection-sampling, is what keeps the sampler deterministic: every RNG
//! draw becomes exactly one trial.

use lumen_core::SystemConfig;
use lumen_desim::Picos;
use lumen_opto::{Gbps, Volts};
use lumen_policy::{BitRateLadder, OpticalMode, ThresholdTable};
use serde::{Deserialize, Serialize};

/// How a unit-cube coordinate maps to a knob value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// `lo + u · (hi − lo)`.
    Linear {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `exp(ln lo + u · (ln hi − ln lo))` — for timescales spanning
    /// decades.
    Log {
        /// Lower bound (positive).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Integers `lo..=hi`, uniformly binned over the coordinate.
    Integer {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// `n` unordered choices, uniformly binned.
    Categorical {
        /// Number of choices.
        n: usize,
    },
}

impl Scale {
    /// Decodes a cube coordinate to the knob's numeric value (the choice
    /// index for categorical dimensions).
    pub fn decode(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        match *self {
            Scale::Linear { lo, hi } => lo + u * (hi - lo),
            Scale::Log { lo, hi } => (lo.ln() + u * (hi.ln() - lo.ln())).exp(),
            Scale::Integer { lo, hi } => {
                let span = (hi - lo + 1) as f64;
                (lo + ((u * span) as i64).min(hi - lo)) as f64
            }
            Scale::Categorical { n } => ((u * n as f64) as usize).min(n - 1) as f64,
        }
    }

    /// Whether nearby cube coordinates mean nearby values (false for
    /// categorical dimensions, whose kernel must be a histogram).
    pub fn is_ordered(&self) -> bool {
        !matches!(self, Scale::Categorical { .. })
    }
}

/// One searchable dimension: a name for reports and a scale.
#[derive(Debug, Clone)]
pub struct Dim {
    /// Stable knob name (appears in the Pareto JSON).
    pub name: &'static str,
    /// Coordinate mapping.
    pub scale: Scale,
}

/// The fixed 10-knob search space of the `ext_dse` harness: the paper's
/// Table 1 thresholds (as `TL` + gap per congestion state), the §3.3
/// window timescales, the ladder shape, and the §3.2.2 laser-controller
/// knobs.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    dims: Vec<Dim>,
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::paper_policy()
    }
}

impl SearchSpace {
    /// The policy-knob space searched by `ext_dse`.
    pub fn paper_policy() -> Self {
        SearchSpace {
            dims: vec![
                Dim { name: "tl_uncongested", scale: Scale::Linear { lo: 0.10, hi: 0.60 } },
                Dim { name: "th_gap_uncongested", scale: Scale::Linear { lo: 0.05, hi: 0.35 } },
                Dim { name: "tl_congested", scale: Scale::Linear { lo: 0.20, hi: 0.80 } },
                Dim { name: "th_gap_congested", scale: Scale::Linear { lo: 0.05, hi: 0.30 } },
                Dim { name: "tw_cycles", scale: Scale::Log { lo: 100.0, hi: 8000.0 } },
                Dim { name: "n_windows", scale: Scale::Integer { lo: 1, hi: 8 } },
                Dim { name: "ladder_levels", scale: Scale::Integer { lo: 2, hi: 8 } },
                Dim { name: "ladder_min_gbps", scale: Scale::Linear { lo: 3.0, hi: 8.0 } },
                Dim { name: "laser_decision_us", scale: Scale::Log { lo: 50.0, hi: 400.0 } },
                Dim { name: "optical_mode", scale: Scale::Categorical { n: 2 } },
            ],
        }
    }

    /// The dimensions, in cube-coordinate order.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// Whether the space is empty (never, for the built-in space).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Decodes a unit-cube point into a concrete policy draw.
    ///
    /// # Panics
    ///
    /// Panics if `u` has the wrong dimensionality.
    pub fn decode(&self, u: &[f64]) -> PolicyDraw {
        assert_eq!(u.len(), self.dims.len(), "cube point dimensionality");
        let v: Vec<f64> = u
            .iter()
            .zip(&self.dims)
            .map(|(&x, d)| d.scale.decode(x))
            .collect();
        // TH = TL + gap, clamped so the table always validates (TL < TH
        // ≤ 1); the gap floor of the scale keeps the pair non-degenerate.
        let tl_unc = v[0];
        let th_unc = (tl_unc + v[1]).min(0.99);
        let tl_con = v[2];
        let th_con = (tl_con + v[3]).min(0.995);
        PolicyDraw {
            tl_uncongested: tl_unc,
            th_uncongested: th_unc,
            tl_congested: tl_con,
            th_congested: th_con,
            tw_cycles: (v[4].round() as u64).max(1),
            n_windows: v[5] as usize,
            ladder_levels: v[6] as usize,
            ladder_min_gbps: v[7],
            laser_decision_us: v[8],
            three_level_optics: v[9] as usize == 1,
        }
    }
}

/// A concrete, always-valid assignment of the searched knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyDraw {
    /// `TL` when uncongested.
    pub tl_uncongested: f64,
    /// `TH` when uncongested (strictly above `TL`).
    pub th_uncongested: f64,
    /// `TL` when congested.
    pub tl_congested: f64,
    /// `TH` when congested.
    pub th_congested: f64,
    /// Sampling window `Tw`, core cycles.
    pub tw_cycles: u64,
    /// Sliding-average history length (Eq. 11's `N`).
    pub n_windows: usize,
    /// Number of bit-rate ladder levels.
    pub ladder_levels: usize,
    /// Lowest ladder rate, Gb/s (the top is pinned at the link rate).
    pub ladder_min_gbps: f64,
    /// External-laser-controller decision period, µs.
    pub laser_decision_us: f64,
    /// Whether the three-level optical mode (attenuator-stepped laser
    /// power) is enabled instead of a single fixed level.
    pub three_level_optics: bool,
}

impl PolicyDraw {
    /// The paper's Table 1 + §4.1 configuration, expressed as a draw (the
    /// reference row of every comparison table).
    pub fn paper_table1() -> Self {
        PolicyDraw {
            tl_uncongested: 0.4,
            th_uncongested: 0.6,
            tl_congested: 0.6,
            th_congested: 0.7,
            tw_cycles: 1000,
            n_windows: 4,
            ladder_levels: 6,
            ladder_min_gbps: 5.0,
            laser_decision_us: 200.0,
            three_level_optics: false,
        }
    }

    /// Applies the draw to a system configuration (policy knobs only; the
    /// geometry, traffic, and seed stay the caller's).
    pub fn apply(&self, config: &mut SystemConfig) {
        config.policy.thresholds = ThresholdTable {
            low_uncongested: self.tl_uncongested,
            high_uncongested: self.th_uncongested,
            low_congested: self.tl_congested,
            high_congested: self.th_congested,
            congestion_level: 0.5,
        };
        config.policy.timing.tw_cycles = self.tw_cycles;
        config.policy.timing.n_windows = self.n_windows;
        config.policy.timing.laser_decision_period = Picos::from_us(self.laser_decision_us as u64);
        // The top rung must equal the network link rate; only the floor
        // and the rung count are searched.
        let max = config.noc.max_rate;
        config.policy.ladder = BitRateLadder::evenly_spaced(
            Gbps::from_gbps(self.ladder_min_gbps.min(max.as_gbps() - 0.5)),
            max,
            self.ladder_levels.max(2),
            Volts::from_v(1.8),
        );
        config.policy.optical_mode = if self.three_level_optics {
            OpticalMode::ThreeLevel
        } else {
            OpticalMode::SingleLevel
        };
    }

    /// The draw as `(name, value)` pairs in dimension order, for reports.
    pub fn named_values(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("tl_uncongested", self.tl_uncongested),
            ("th_uncongested", self.th_uncongested),
            ("tl_congested", self.tl_congested),
            ("th_congested", self.th_congested),
            ("tw_cycles", self.tw_cycles as f64),
            ("n_windows", self.n_windows as f64),
            ("ladder_levels", self.ladder_levels as f64),
            ("ladder_min_gbps", self.ladder_min_gbps),
            ("laser_decision_us", self.laser_decision_us),
            ("optical_mode", if self.three_level_optics { 1.0 } else { 0.0 }),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_decode_endpoints() {
        let lin = Scale::Linear { lo: 2.0, hi: 4.0 };
        assert_eq!(lin.decode(0.0), 2.0);
        assert_eq!(lin.decode(1.0), 4.0);
        let log = Scale::Log { lo: 100.0, hi: 8000.0 };
        assert!((log.decode(0.0) - 100.0).abs() < 1e-9);
        assert!((log.decode(1.0) - 8000.0).abs() < 1e-6);
        let int = Scale::Integer { lo: 1, hi: 8 };
        assert_eq!(int.decode(0.0), 1.0);
        assert_eq!(int.decode(0.999), 8.0);
        assert_eq!(int.decode(1.0), 8.0);
        let cat = Scale::Categorical { n: 2 };
        assert_eq!(cat.decode(0.49), 0.0);
        assert_eq!(cat.decode(0.51), 1.0);
        assert!(!cat.is_ordered());
        assert!(int.is_ordered());
    }

    #[test]
    fn every_cube_corner_decodes_to_a_valid_system() {
        // Exhaustive corners of the 10-cube (1024 points): every decode
        // must produce a configuration SystemConfig::validate accepts.
        let space = SearchSpace::paper_policy();
        for mask in 0u32..(1 << space.len()) {
            let u: Vec<f64> = (0..space.len())
                .map(|i| if mask >> i & 1 == 1 { 1.0 } else { 0.0 })
                .collect();
            let draw = space.decode(&u);
            let mut config = SystemConfig::paper_default();
            draw.apply(&mut config);
            config.validate();
            assert!(draw.th_uncongested > draw.tl_uncongested);
            assert!(draw.th_congested > draw.tl_congested);
        }
    }

    #[test]
    fn paper_table1_draw_matches_paper_default() {
        let mut config = SystemConfig::paper_default();
        let reference = config.clone();
        PolicyDraw::paper_table1().apply(&mut config);
        assert_eq!(config.policy.thresholds, reference.policy.thresholds);
        assert_eq!(config.policy.ladder, reference.policy.ladder);
        assert_eq!(config.policy.timing.tw_cycles, reference.policy.timing.tw_cycles);
        assert_eq!(config.policy.optical_mode, reference.policy.optical_mode);
    }

    #[test]
    fn mid_cube_decode_is_reasonable() {
        let space = SearchSpace::paper_policy();
        let draw = space.decode(&vec![0.5; space.len()]);
        assert!(draw.tw_cycles >= 100 && draw.tw_cycles <= 8000);
        assert!(draw.ladder_levels >= 2 && draw.ladder_levels <= 8);
        assert!(draw.laser_decision_us >= 50.0 && draw.laser_decision_us <= 400.0);
    }
}
