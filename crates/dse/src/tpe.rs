//! A vendored, deterministic TPE-like sampler.
//!
//! Tree-structured Parzen Estimation in the unit hypercube, in the spirit
//! of Bergstra et al. (and of the Optuna samplers the OpenROAD
//! flow-tuning literature builds on), reduced to what a reproducible
//! offline workspace needs:
//!
//! - **Startup phase:** the first `n_startup` suggestions are uniform
//!   draws from the cube (stratified per dimension is unnecessary at this
//!   scale; plain uniform keeps the draw count per suggestion fixed).
//! - **Model phase:** observed trials are split into *good* and *bad* by
//!   constrained non-domination rank (the best ~γ-quantile is good — a
//!   multi-objective stand-in for TPE's single-objective quantile split).
//!   Each dimension gets a pair of Parzen estimators — truncated uniform
//!   kernels around the good/bad coordinates for ordered dimensions,
//!   smoothed histograms for categorical ones. `n_candidates` points are
//!   drawn from the good model and the one maximizing the density ratio
//!   `l(x)/g(x)` is suggested.
//! - **Determinism:** every random decision comes from the caller-seeded
//!   [`lumen_desim::Rng`] (splitmix-based), and the number of draws per
//!   suggestion depends only on the trial count and the space shape —
//!   never on wall-clock, thread count, or map iteration order. The same
//!   seed and the same observation sequence produce the same suggestion
//!   sequence, bit for bit.

use crate::pareto::{ranks, Goal};
use crate::space::{Scale, SearchSpace};
use lumen_desim::Rng;

/// Kernel half-width in cube coordinates for ordered dimensions. Fixed
/// rather than data-driven: the per-dimension sample counts here are
/// small enough that Silverman-style bandwidths would collapse noisily.
const KERNEL_HALF_WIDTH: f64 = 0.12;

/// One observed trial: where it ran and how it scored.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The cube point that was evaluated.
    pub point: Vec<f64>,
    /// Its constrained objectives.
    pub goal: Goal,
}

/// The deterministic TPE-like sampler.
#[derive(Debug)]
pub struct Tpe {
    space: SearchSpace,
    rng: Rng,
    observations: Vec<Observation>,
    /// Suggestions before the Parzen model activates.
    pub n_startup: usize,
    /// Candidate draws per model-phase suggestion.
    pub n_candidates: usize,
    /// Fraction of trials labelled good (γ).
    pub gamma: f64,
}

impl Tpe {
    /// A sampler over `space`, deterministic in `seed`.
    pub fn new(space: SearchSpace, seed: u64) -> Tpe {
        Tpe {
            space,
            rng: Rng::seed_from(seed),
            observations: Vec::new(),
            n_startup: 8,
            n_candidates: 24,
            gamma: 0.25,
        }
    }

    /// The trials observed so far.
    pub fn observations(&self) -> &[Observation] {
        &self.observations
    }

    /// Records a finished trial.
    pub fn observe(&mut self, point: Vec<f64>, goal: Goal) {
        assert_eq!(point.len(), self.space.len(), "observation dimensionality");
        self.observations.push(Observation { point, goal });
    }

    /// Suggests the next cube point to evaluate.
    ///
    /// The sequence of suggestions is a pure function of the seed, the
    /// space shape, and the observation history — two samplers fed
    /// identically stay bit-identical forever:
    ///
    /// ```
    /// use lumen_dse::pareto::Goal;
    /// use lumen_dse::space::SearchSpace;
    /// use lumen_dse::tpe::Tpe;
    ///
    /// let mut a = Tpe::new(SearchSpace::paper_policy(), 42);
    /// let mut b = Tpe::new(SearchSpace::paper_policy(), 42);
    /// for trial in 0..12 {
    ///     let (pa, pb) = (a.suggest(), b.suggest());
    ///     assert_eq!(pa, pb);
    ///     assert!(pa.iter().all(|&u| (0.0..=1.0).contains(&u)));
    ///     // Score the trial however the harness likes; the sampler only
    ///     // sees the cube point and its objective vector.
    ///     let goal = Goal {
    ///         power: pa[0],
    ///         avg_latency: 40.0 + trial as f64,
    ///         p99_latency: 90.0 + trial as f64,
    ///         violation: 0.0,
    ///     };
    ///     a.observe(pa, goal);
    ///     b.observe(pb, goal);
    /// }
    /// ```
    pub fn suggest(&mut self) -> Vec<f64> {
        if self.observations.len() < self.n_startup {
            return (0..self.space.len()).map(|_| self.rng.next_f64()).collect();
        }
        let (good, bad) = self.split();
        let mut best: Option<(f64, Vec<f64>)> = None;
        for _ in 0..self.n_candidates {
            let cand = self.draw_from(&good);
            let score = self.log_density(&cand, &good) - self.log_density(&cand, &bad);
            // Strictly-greater keeps the earliest best candidate on ties,
            // so the choice is independent of float noise ordering.
            if best.as_ref().is_none_or(|(s, _)| score > *s) {
                best = Some((score, cand));
            }
        }
        best.expect("n_candidates >= 1").1
    }

    /// Splits observations into (good, bad) cube points by constrained
    /// non-domination rank; ties at the γ-boundary resolve by submission
    /// order (earlier trials first), keeping the split deterministic.
    /// Returns owned copies (the sets are tiny) so the model phase can
    /// keep drawing from the rng while holding them.
    fn split(&self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let goals: Vec<Goal> = self.observations.iter().map(|o| o.goal).collect();
        let rank = ranks(&goals);
        let mut order: Vec<usize> = (0..self.observations.len()).collect();
        order.sort_by_key(|&i| (rank[i], i));
        let n_good = ((self.observations.len() as f64 * self.gamma).ceil() as usize)
            .clamp(1, self.observations.len().saturating_sub(1).max(1));
        let good: Vec<Vec<f64>> = order[..n_good]
            .iter()
            .map(|&i| self.observations[i].point.clone())
            .collect();
        let bad: Vec<Vec<f64>> = order[n_good..]
            .iter()
            .map(|&i| self.observations[i].point.clone())
            .collect();
        (good, bad)
    }

    /// Draws one candidate from the Parzen model built on `centers`.
    fn draw_from(&mut self, centers: &[Vec<f64>]) -> Vec<f64> {
        let mut point = Vec::with_capacity(self.space.len());
        for (d, dim) in self.space.dims().iter().enumerate() {
            // One center per dimension (TPE factorizes across dims).
            let c = centers[self.rng.index(centers.len())][d];
            let u = match dim.scale {
                Scale::Categorical { n } => {
                    // Smoothed histogram: re-draw the observed category
                    // with high probability, else uniform over all.
                    if self.rng.chance(0.8) {
                        c
                    } else {
                        self.rng.index(n) as f64 / n as f64 + 0.5 / n as f64
                    }
                }
                _ => {
                    // Truncated uniform kernel around the center.
                    let lo = (c - KERNEL_HALF_WIDTH).max(0.0);
                    let hi = (c + KERNEL_HALF_WIDTH).min(1.0);
                    lo + self.rng.next_f64() * (hi - lo)
                }
            };
            point.push(u);
        }
        point
    }

    /// Log Parzen density of `point` under the model on `centers`
    /// (factorized over dimensions; a floor keeps empty models finite).
    fn log_density(&self, point: &[f64], centers: &[Vec<f64>]) -> f64 {
        if centers.is_empty() {
            return 0.0;
        }
        let mut log_p = 0.0;
        for (d, dim) in self.space.dims().iter().enumerate() {
            let x = point[d];
            let p = match dim.scale {
                Scale::Categorical { n } => {
                    let cat = (x * n as f64) as usize;
                    let hits = centers
                        .iter()
                        .filter(|c| (c[d] * n as f64) as usize == cat)
                        .count();
                    // Laplace smoothing keeps unseen categories possible.
                    (hits as f64 + 1.0) / (centers.len() as f64 + n as f64)
                }
                _ => {
                    let mut density = 0.0;
                    for c in centers {
                        let lo = (c[d] - KERNEL_HALF_WIDTH).max(0.0);
                        let hi = (c[d] + KERNEL_HALF_WIDTH).min(1.0);
                        if x >= lo && x <= hi {
                            density += 1.0 / ((hi - lo) * centers.len() as f64);
                        }
                    }
                    density.max(1e-12)
                }
            };
            log_p += p.ln();
        }
        log_p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    fn goal(power: f64) -> Goal {
        Goal {
            power,
            avg_latency: 30.0,
            p99_latency: 60.0,
            violation: 0.0,
        }
    }

    fn drive(seed: u64, trials: usize) -> Vec<Vec<f64>> {
        let mut tpe = Tpe::new(SearchSpace::paper_policy(), seed);
        let mut suggested = Vec::new();
        for _ in 0..trials {
            let p = tpe.suggest();
            // A synthetic objective: power grows with the first knob.
            let g = goal(0.2 + 0.6 * p[0]);
            tpe.observe(p.clone(), g);
            suggested.push(p);
        }
        suggested
    }

    #[test]
    fn suggestions_are_seed_deterministic() {
        assert_eq!(drive(42, 20), drive(42, 20));
        assert_ne!(drive(42, 20), drive(43, 20));
    }

    #[test]
    fn suggestions_stay_in_the_cube() {
        for p in drive(7, 25) {
            assert_eq!(p.len(), SearchSpace::paper_policy().len());
            assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "{p:?}");
        }
    }

    #[test]
    fn model_phase_exploits_the_good_region() {
        // Objective favors small first-knob values; post-startup
        // suggestions should concentrate there versus uniform (mean 0.5).
        let all = drive(11, 40);
        let model_phase = &all[8..];
        let mean: f64 =
            model_phase.iter().map(|p| p[0]).sum::<f64>() / model_phase.len() as f64;
        assert!(mean < 0.45, "TPE failed to exploit: mean x0 = {mean}");
    }

    #[test]
    fn split_is_deterministic_and_sized_by_gamma() {
        let mut tpe = Tpe::new(SearchSpace::paper_policy(), 5);
        for i in 0..12 {
            let p = vec![i as f64 / 12.0; tpe.space.len()];
            tpe.observe(p, goal(0.2 + i as f64 * 0.05));
        }
        let (good, bad) = tpe.split();
        assert_eq!(good.len(), 3); // ceil(12 × 0.25)
        assert_eq!(bad.len(), 9);
        // Lowest-power observations (smallest i) are the good set.
        assert!(good.iter().all(|g| g[0] < 0.25));
    }

    #[test]
    fn infeasible_trials_are_labelled_bad() {
        let mut tpe = Tpe::new(SearchSpace::paper_policy(), 5);
        for i in 0..8 {
            let mut g = goal(0.5);
            let p = vec![i as f64 / 8.0; tpe.space.len()];
            if i < 6 {
                g.violation = 0.1; // delivery floor missed
            } else {
                g.power = 0.3 + i as f64 * 0.01;
            }
            tpe.observe(p, g);
        }
        let (good, _) = tpe.split();
        // The two feasible trials (i = 6, 7) outrank every infeasible one.
        assert!(good.iter().all(|g| g[0] >= 6.0 / 8.0));
    }
}
