//! # lumen-dse — deterministic design-space exploration over the policy knobs
//!
//! The paper hand-picks its policy configuration: Table 1's thresholds,
//! `Tw = 1000`, a 4-window sliding average, a 6-level 5–10 Gb/s ladder,
//! a 200 µs laser controller. This crate asks the question the paper
//! leaves open — *is that point any good?* — by searching the knob space
//! per workload with a vendored, fully deterministic TPE-like optimizer
//! (no crates.io dependencies) on top of the [`lumen_core::exec`]
//! executor.
//!
//! ## Shape of a search
//!
//! 1. **Quick fidelity.** `trials` configurations are suggested by the
//!    [`tpe`] sampler and simulated at ~10×-shortened horizons, in fixed
//!    `batch`-sized generations (batch size is a search parameter, never
//!    the thread count — results are bit-identical at any `--jobs`).
//! 2. **Full fidelity.** The best `survivors` (by constrained
//!    non-domination rank over normalized power, mean latency, and p99,
//!    under a delivery-ratio floor) re-run at the paper's full horizons.
//! 3. **Report.** Everything lands in a schema-versioned
//!    [`report::DseReport`] (`lumen-dse/1`): every sampled point with its
//!    decoded knobs, derived seed, validated-finite objectives, and
//!    dominated-or-not flag, plus Table-1 and non-power-aware reference
//!    rows at both fidelities.
//!
//! Determinism is end-to-end: per-point seeds derive from the scenario's
//! base seed and comparison group exactly as every other harness's
//! points do ([`lumen_core::exec::derive_seed`]), every trial of a
//! scenario shares one comparison group (common random numbers — the
//! policies are compared under one traffic realization), and the sampler
//! draws from a seeded [`lumen_desim::Rng`]. The same seed produces a
//! byte-identical report at any thread or shard count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod pareto;
pub mod report;
pub mod space;
pub mod tpe;

pub use pareto::{pareto_front, ranks as pareto_ranks, Goal};
pub use report::{DseReport, Fidelity, ReferenceRow, ReportPoint, DSE_SCHEMA};
pub use space::{PolicyDraw, SearchSpace};
pub use tpe::Tpe;

use lumen_core::exec::derive_seed;
use lumen_core::prelude::*;
use lumen_core::results::Objectives;
use pareto::ranks;

/// The traffic a scenario drives, parameterized by the measure horizon so
/// phase-structured workloads keep their full shape at both fidelities.
#[derive(Debug, Clone)]
pub enum DseWorkload {
    /// Uniform-random traffic at a constant rate.
    Uniform {
        /// Offered rate, packets/cycle.
        rate: f64,
    },
    /// The Fig. 6 hotspot schedule, compressed so its 8 phases tile the
    /// measure window (both fidelities see every valley and jump).
    HotspotCompressed,
    /// Request/response datacenter traffic.
    Datacenter {
        /// Workload parameters.
        config: DatacenterConfig,
    },
}

impl DseWorkload {
    /// Whether a quick-fidelity run of this workload is a *prefix* of the
    /// full-fidelity run, so the warm-start path ([`DseConfig::warm_start`])
    /// can checkpoint the quick run and resume it to the full horizon.
    /// [`DseWorkload::HotspotCompressed`] is not: its phase schedule is a
    /// function of the measure horizon, so the two fidelities drive
    /// different traffic and survivors must re-run cold.
    pub fn warm_startable(&self) -> bool {
        !matches!(self, DseWorkload::HotspotCompressed)
    }

    /// The executable workload for a given measure horizon.
    pub fn workload(&self, noc: &NocConfig, measure_cycles: u64) -> Workload {
        let size = PacketSize::Fixed(5);
        match self {
            DseWorkload::Uniform { rate } => Workload::Uniform { rate: *rate, size },
            DseWorkload::HotspotCompressed => {
                let phase = (measure_cycles / 8).max(1);
                let rates = [1.0, 1.5, 1.0, 3.5, 4.0, 3.5, 1.5, 1.0];
                Workload::Synthetic {
                    pattern: Pattern::paper_hotspot(noc),
                    profile: RateProfile::Phases(
                        rates.iter().map(|&r| (phase, r)).collect(),
                    ),
                    size,
                }
            }
            DseWorkload::Datacenter { config } => Workload::Datacenter { config: *config },
        }
    }
}

/// One searchable scenario: a fabric + traffic + horizons.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name (becomes the report's `scenario` field).
    pub name: String,
    /// System template: geometry, transmitter, base seed. The policy
    /// knobs are overwritten per trial; `power_aware` is forced on for
    /// trials and off for the baseline row.
    pub config: SystemConfig,
    /// The traffic family.
    pub workload: DseWorkload,
    /// Comparison group shared by every point of this scenario.
    pub group: u64,
    /// Full-fidelity warmup cycles.
    pub warmup_cycles: u64,
    /// Full-fidelity measure cycles.
    pub measure_cycles: u64,
}

/// Search hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct DseConfig {
    /// Quick-fidelity trials to sample.
    pub trials: usize,
    /// Trials re-evaluated at full fidelity.
    pub survivors: usize,
    /// Suggestions per TPE generation. A *search* parameter: changing it
    /// changes the result (the model refits between generations), so it
    /// is deliberately independent of `--jobs`.
    pub batch: usize,
    /// Delivery-ratio constraint floor.
    pub min_delivery: f64,
    /// Sampler seed (the simulation seeds derive from the scenario's
    /// system seed, not this).
    pub sampler_seed: u64,
    /// Quick-fidelity divisor (horizons shrink by this, floored at the
    /// shared bench minimum of 2000 cycles).
    pub quick_divisor: u64,
    /// Warm-start the full-fidelity pass from quick-run checkpoints.
    ///
    /// When set, quick trials run the **full** warmup followed by the
    /// quick measure window and save a `lumen-ckpt/1` snapshot at their
    /// end; survivors *resume* those snapshots and only simulate the
    /// remaining `measure - quick_measure` cycles instead of re-running
    /// warmup + full measure from scratch. Because resume is
    /// bit-identical (see CHECKPOINTS.md), a warm-started survivor's
    /// full-fidelity objectives equal the unbroken full run's exactly;
    /// only the quick cohort's numbers shift (they measure after the
    /// full warmup). Workloads whose quick run is not a prefix of the
    /// full run ([`DseWorkload::warm_startable`]) fall back to cold
    /// full re-runs.
    pub warm_start: bool,
}

impl Default for DseConfig {
    fn default() -> Self {
        DseConfig {
            trials: 24,
            survivors: 6,
            batch: 8,
            min_delivery: 0.99,
            sampler_seed: 7,
            quick_divisor: 10,
            warm_start: false,
        }
    }
}

impl DseConfig {
    /// Validates the hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics on a zero trial/batch/divisor count, more survivors than
    /// trials, or a delivery floor outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.trials >= 1, "need at least one trial");
        assert!(self.batch >= 1, "batch must be positive");
        assert!(self.quick_divisor >= 1, "quick divisor must be positive");
        assert!(
            self.survivors >= 1 && self.survivors <= self.trials,
            "survivors must be in 1..=trials"
        );
        assert!(
            (0.0..=1.0).contains(&self.min_delivery),
            "delivery floor must be in [0, 1]"
        );
    }

    /// The quick-fidelity horizons for a scenario (mirrors the bench
    /// CLI's `--quick` scaling: `full / divisor`, floored at 2000).
    pub fn quick_horizons(&self, scenario: &Scenario) -> (u64, u64) {
        let scale = |full: u64| (full / self.quick_divisor).max(2_000);
        (scale(scenario.warmup_cycles), scale(scenario.measure_cycles))
    }
}

/// The goal recorded for a trial whose run could not produce objectives
/// (delivered nothing, or a metric came out non-finite): maximally
/// infeasible with large-but-finite objectives, so the sampler steers
/// away without ever holding a non-finite number.
fn failed_trial_goal() -> Goal {
    Goal {
        power: 10.0,
        avg_latency: 1e9,
        p99_latency: 1e9,
        violation: 1.0,
    }
}

/// One scenario's search outcome, before report assembly.
struct Evaluated {
    draw: PolicyDraw,
    objectives: Option<Objectives>,
    goal: Goal,
}

/// Runs one scenario's multi-fidelity search and returns its report.
///
/// # Panics
///
/// Panics on an invalid `DseConfig`, or if a *reference* run (Table 1 or
/// the non-power-aware baseline) fails to produce objectives — trial
/// failures are tolerated and steered away from, but a broken reference
/// means the scenario itself is misconfigured.
pub fn run_scenario(
    scenario: &Scenario,
    dse: &DseConfig,
    executor: &Executor,
    mut progress: impl FnMut(&str),
) -> DseReport {
    dse.validate();
    let space = SearchSpace::paper_policy();
    let (quick_warmup, quick_measure) = dse.quick_horizons(scenario);
    // Warm start only when the quick run is a strict prefix of the full
    // run: prefix-compatible workload, and the quick measure window (the
    // checkpoint cycle) inside the full horizon.
    let warm = dse.warm_start
        && scenario.workload.warm_startable()
        && quick_measure <= scenario.measure_cycles;
    let quick_warmup = if warm { scenario.warmup_cycles } else { quick_warmup };
    let warm_ckpt = |trial: usize| {
        std::env::temp_dir().join(format!(
            "lumen-dse-warm-{}-{}-{trial}.ckpt",
            std::process::id(),
            scenario.group
        ))
    };
    let base_seed = scenario.config.seed;
    let point_seed = derive_seed(base_seed, scenario.group);

    let build_point = |draw: &PolicyDraw, power_aware: bool, warmup: u64, measure: u64, label: String| {
        let mut config = scenario.config.clone();
        config.power_aware = power_aware;
        draw.apply(&mut config);
        let experiment = Experiment::new(config)
            .warmup_cycles(warmup)
            .measure_cycles(measure);
        let noc = &scenario.config.noc;
        Point::new(label, experiment, scenario.workload.workload(noc, measure))
            .in_group(scenario.group)
    };

    // Reference rows: Table 1 and the non-PA baseline, both fidelities.
    // They run in the same comparison group as every trial, so the whole
    // scenario is one common-random-numbers block.
    let table1 = PolicyDraw::paper_table1();
    let refs = vec![
        build_point(&table1, true, quick_warmup, quick_measure, "table1 quick".into()),
        build_point(&table1, true, scenario.warmup_cycles, scenario.measure_cycles, "table1 full".into()),
        build_point(&table1, false, quick_warmup, quick_measure, "non-PA quick".into()),
        build_point(&table1, false, scenario.warmup_cycles, scenario.measure_cycles, "non-PA full".into()),
    ];
    progress(&format!("{}: reference rows (4 runs)", scenario.name));
    let ref_results = executor.run(&refs);
    let ref_obj = |i: usize| -> Objectives {
        ref_results[i]
            .expect_ok()
            .objectives()
            .unwrap_or_else(|e| panic!("reference run `{}` unusable: {e}", refs[i].label))
    };
    let table1_row = ReferenceRow { quick: ref_obj(0), full: ref_obj(1) };
    let baseline_row = ReferenceRow { quick: ref_obj(2), full: ref_obj(3) };

    // Quick-fidelity TPE generations.
    let mut tpe = Tpe::new(space.clone(), dse.sampler_seed);
    let mut evaluated: Vec<Evaluated> = Vec::with_capacity(dse.trials);
    while evaluated.len() < dse.trials {
        let gen_size = dse.batch.min(dse.trials - evaluated.len());
        let cubes: Vec<Vec<f64>> = (0..gen_size).map(|_| tpe.suggest()).collect();
        let draws: Vec<PolicyDraw> = cubes.iter().map(|u| space.decode(u)).collect();
        let points: Vec<Point> = draws
            .iter()
            .enumerate()
            .map(|(k, draw)| {
                let trial = evaluated.len() + k;
                let mut point = build_point(
                    draw,
                    true,
                    quick_warmup,
                    quick_measure,
                    format!("{} trial {trial}", scenario.name),
                );
                if warm {
                    // Snapshot at the quick run's end; survivors resume
                    // from here instead of re-running warmup + measure.
                    point.experiment = point
                        .experiment
                        .clone()
                        .save_at(quick_warmup + quick_measure, warm_ckpt(trial));
                }
                point
            })
            .collect();
        progress(&format!(
            "{}: quick generation of {gen_size} ({} / {} trials)",
            scenario.name,
            evaluated.len() + gen_size,
            dse.trials
        ));
        let results = executor.run(&points);
        for ((cube, draw), pr) in cubes.into_iter().zip(draws).zip(&results) {
            let objectives = pr
                .run_result()
                .and_then(|r| r.objectives().ok());
            let goal = match &objectives {
                Some(obj) => Goal::new(obj, dse.min_delivery),
                None => failed_trial_goal(),
            };
            tpe.observe(cube, goal);
            evaluated.push(Evaluated { draw, objectives, goal });
        }
    }

    // Survivor selection: best constrained non-domination ranks, ties by
    // trial id (deterministic).
    let goals: Vec<Goal> = evaluated.iter().map(|e| e.goal).collect();
    let quick_ranks = ranks(&goals);
    let mut order: Vec<usize> = (0..evaluated.len()).collect();
    order.sort_by_key(|&i| (quick_ranks[i], i));
    let survivors: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| evaluated[i].objectives.is_some())
        .take(dse.survivors)
        .collect();

    // Full-fidelity re-evaluation of the survivors (resumed from their
    // quick checkpoints when warm-starting).
    let full_points: Vec<Point> = survivors
        .iter()
        .map(|&i| {
            let mut point = build_point(
                &evaluated[i].draw,
                true,
                scenario.warmup_cycles,
                scenario.measure_cycles,
                format!("{} full {}", scenario.name, i),
            );
            if warm {
                point.experiment = point.experiment.clone().resume(warm_ckpt(i));
            }
            point
        })
        .collect();
    progress(&format!(
        "{}: full fidelity ({} survivors{})",
        scenario.name,
        survivors.len(),
        if warm { ", warm-started" } else { "" }
    ));
    let full_results = executor.run(&full_points);
    if warm {
        for trial in 0..evaluated.len() {
            std::fs::remove_file(warm_ckpt(trial)).ok();
        }
    }
    let full_obj: Vec<Option<Objectives>> = full_results
        .iter()
        .map(|pr| pr.run_result().and_then(|r| r.objectives().ok()))
        .collect();

    // Report assembly: quick cohort then full cohort, each with its own
    // dominated flags.
    let mut points = Vec::new();
    for (i, e) in evaluated.iter().enumerate() {
        let Some(obj) = e.objectives else {
            // Failed trials carry no finite objectives and are omitted
            // from the report; the sampler already steered away.
            continue;
        };
        let dominated = quick_ranks[i] != 0;
        points.push(ReportPoint {
            id: i,
            fidelity: "quick".into(),
            seed: point_seed,
            params: e.draw.clone(),
            objectives: obj,
            feasible: e.goal.feasible(),
            dominated,
        });
    }
    let full_goals: Vec<Goal> = full_obj
        .iter()
        .map(|o| match o {
            Some(obj) => Goal::new(obj, dse.min_delivery),
            None => failed_trial_goal(),
        })
        .collect();
    let full_ranks = ranks(&full_goals);
    for (k, &i) in survivors.iter().enumerate() {
        let Some(obj) = full_obj[k] else { continue };
        points.push(ReportPoint {
            id: i,
            fidelity: "full".into(),
            seed: point_seed,
            params: evaluated[i].draw.clone(),
            objectives: obj,
            feasible: full_goals[k].feasible(),
            dominated: full_ranks[k] != 0,
        });
    }

    DseReport {
        schema: DSE_SCHEMA.into(),
        scenario: scenario.name.clone(),
        base_seed,
        group: scenario.group,
        min_delivery: dse.min_delivery,
        quick: Fidelity { warmup_cycles: quick_warmup, measure_cycles: quick_measure },
        full: Fidelity {
            warmup_cycles: scenario.warmup_cycles,
            measure_cycles: scenario.measure_cycles,
        },
        table1: table1_row,
        baseline_non_pa: baseline_row,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario(seed: u64) -> Scenario {
        let mut config = SystemConfig::paper_default();
        config.noc = NocConfig::small_for_tests();
        config.seed = seed;
        Scenario {
            name: "tiny-uniform".into(),
            config,
            workload: DseWorkload::Uniform { rate: 0.15 },
            group: 0,
            warmup_cycles: 500,
            measure_cycles: 4_000,
        }
    }

    fn tiny_dse() -> DseConfig {
        DseConfig {
            trials: 4,
            survivors: 2,
            batch: 2,
            quick_divisor: 2,
            ..DseConfig::default()
        }
    }

    #[test]
    fn search_is_seed_deterministic_and_jobs_invariant() {
        let a = run_scenario(&tiny_scenario(3), &tiny_dse(), &Executor::new(1), |_| {});
        let b = run_scenario(&tiny_scenario(3), &tiny_dse(), &Executor::new(4), |_| {});
        assert_eq!(a.to_json(), b.to_json(), "thread count must not matter");
        let c = run_scenario(&tiny_scenario(4), &tiny_dse(), &Executor::new(1), |_| {});
        assert_ne!(a.to_json(), c.to_json(), "different seed, different search");
    }

    #[test]
    fn report_has_both_cohorts_and_valid_schema() {
        let r = run_scenario(&tiny_scenario(5), &tiny_dse(), &Executor::new(2), |_| {});
        assert_eq!(r.schema, DSE_SCHEMA);
        let quick = r.points.iter().filter(|p| p.fidelity == "quick").count();
        let full = r.full_points().count();
        assert_eq!(quick, 4);
        assert_eq!(full, 2);
        // Fault-free runs always deliver everything they resolve.
        assert!(r.points.iter().all(|p| p.objectives.delivery_ratio == 1.0));
        assert!(r.points.iter().all(|p| p.feasible));
        // The quick cohort has a non-empty Pareto front.
        assert!(r.points.iter().any(|p| !p.dominated));
    }

    #[test]
    fn reference_rows_bracket_the_trials() {
        let r = run_scenario(&tiny_scenario(6), &tiny_dse(), &Executor::new(2), |_| {});
        // The non-PA baseline pins links at max rate: normalized power 1.
        assert!((r.baseline_non_pa.full.normalized_power - 1.0).abs() < 0.2);
        // Table 1 saves real power against it.
        assert!(r.table1.full.normalized_power < r.baseline_non_pa.full.normalized_power);
    }

    #[test]
    fn warm_started_survivors_match_unbroken_full_runs() {
        let scenario = tiny_scenario(9);
        let dse = DseConfig {
            warm_start: true,
            ..tiny_dse()
        };
        let warm = run_scenario(&scenario, &dse, &Executor::new(2), |_| {});
        // Every warm-started full-fidelity point must be bit-identical to
        // an unbroken full run of the same knobs — warm start is pure
        // compute savings, never a different experiment.
        let mut checked = 0;
        for p in warm.points.iter().filter(|p| p.fidelity == "full") {
            let mut config = scenario.config.clone();
            config.power_aware = true;
            p.params.apply(&mut config);
            let exp = Experiment::new(config)
                .warmup_cycles(scenario.warmup_cycles)
                .measure_cycles(scenario.measure_cycles);
            let workload = scenario
                .workload
                .workload(&scenario.config.noc, scenario.measure_cycles);
            let r = Point::new("unbroken", exp, workload)
                .in_group(scenario.group)
                .run_at_index(0);
            // Cold, unless LUMEN_TEST_CHECKPOINT=1 split it in-memory.
            let env_split = std::env::var("LUMEN_TEST_CHECKPOINT").is_ok_and(|v| v == "1");
            assert_eq!(r.resumed, env_split);
            let o = r.objectives().expect("unbroken run usable");
            assert_eq!(
                p.objectives.normalized_power.to_bits(),
                o.normalized_power.to_bits()
            );
            assert_eq!(
                p.objectives.avg_latency_cycles.to_bits(),
                o.avg_latency_cycles.to_bits()
            );
            assert_eq!(
                p.objectives.p99_latency_cycles.to_bits(),
                o.p99_latency_cycles.to_bits()
            );
            assert_eq!(
                p.objectives.delivery_ratio.to_bits(),
                o.delivery_ratio.to_bits()
            );
            checked += 1;
        }
        assert!(checked >= 1, "no full-fidelity survivors to check");
    }

    #[test]
    fn warm_start_falls_back_cold_for_horizon_shaped_workloads() {
        let mut scenario = tiny_scenario(11);
        scenario.workload = DseWorkload::HotspotCompressed;
        // The compressed hotspot schedule needs a longer horizon than the
        // uniform tiny scenario before any traffic drains on the test mesh.
        scenario.measure_cycles = 24_000;
        assert!(!scenario.workload.warm_startable());
        let dse = DseConfig {
            warm_start: true,
            ..tiny_dse()
        };
        let warm = run_scenario(&scenario, &dse, &Executor::new(2), |_| {});
        let cold = run_scenario(&scenario, &tiny_dse(), &Executor::new(2), |_| {});
        assert_eq!(
            warm.to_json(),
            cold.to_json(),
            "non-prefix workloads must ignore warm_start entirely"
        );
    }

    #[test]
    #[should_panic(expected = "survivors must be in")]
    fn config_rejects_more_survivors_than_trials() {
        let dse = DseConfig { trials: 2, survivors: 5, ..DseConfig::default() };
        dse.validate();
    }
}
