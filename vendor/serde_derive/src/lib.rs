//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored in-tree `serde` facade.
//!
//! This workspace builds fully offline, so the real serde_derive (and its
//! syn/quote dependency tree) is unavailable. This crate hand-parses the
//! token stream of the deriving item — no helper crates — and supports
//! exactly the shapes the Lumen workspace uses:
//!
//! - structs with named fields,
//! - tuple structs (any arity, including newtypes),
//! - unit structs,
//! - enums with unit, tuple, and struct variants.
//!
//! Generics, `where` clauses, and `#[serde(...)]` attributes are not
//! supported and produce a compile error naming the offending item. The
//! generated code targets the simplified `serde::Value` data model of the
//! vendored facade; see `vendor/serde/src/lib.rs` for the encoding.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().expect("error tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Advances past any `#[...]` attributes starting at `i`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)` starting at `i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(ts: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = ident_at(&toks, i).ok_or("expected `struct` or `enum`")?;
    i += 1;
    let name = ident_at(&toks, i).ok_or("expected item name")?;
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde_derive (vendored): generic type `{name}` is not supported"
            ));
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive for `{other}` item `{name}`")),
    };
    Ok(Item { name, kind })
}

/// Parses `name: Type, ...` named-field lists, returning the field names.
fn parse_named_fields(ts: TokenStream) -> Result<Vec<String>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).ok_or("expected field name")?;
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to the next comma at angle-depth 0.
        let mut angle = 0i64;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    Ok(fields)
}

/// Counts the fields of a tuple-struct / tuple-variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut angle = 0i64;
    let mut segments = 0usize;
    let mut segment_has_tokens = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                segment_has_tokens = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if segment_has_tokens {
                    segments += 1;
                }
                segment_has_tokens = false;
            }
            _ => segment_has_tokens = true,
        }
    }
    if segment_has_tokens {
        segments += 1;
    }
    segments
}

fn parse_variants(ts: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).ok_or("expected variant name")?;
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("explicit discriminant on `{name}` unsupported"))
            }
            Some(_) => return Err(format!("unexpected token after variant `{name}`")),
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "({:?}.to_string(), serde::Serialize::serialize_value(&self.{f})),",
                        f
                    )
                })
                .collect();
            format!("serde::Value::Map(vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "serde::Serialize::serialize_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|k| format!("serde::Serialize::serialize_value(&self.{k}),"))
                .collect();
            format!("serde::Value::Seq(vec![{entries}])")
        }
        ItemKind::UnitStruct => "serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: String = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{vname} => serde::Value::Str({vname:?}.to_string()),"
        ),
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => serde::Value::Map(vec![({vname:?}.to_string(), \
             serde::Serialize::serialize_value(f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("serde::Serialize::serialize_value({b}),"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => serde::Value::Map(vec![({vname:?}.to_string(), \
                 serde::Value::Seq(vec![{items}]))]),",
                binds.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("({f:?}.to_string(), serde::Serialize::serialize_value({f})),")
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => serde::Value::Map(vec![({vname:?}.to_string(), \
                 serde::Value::Map(vec![{entries}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::deserialize_value(serde::map_field(map, {f:?}, {name:?})?)?,"
                    )
                })
                .collect();
            format!(
                "let map = v.as_map().ok_or_else(|| serde::Error::expected(\"map\", {name:?}))?;\n\
                 core::result::Result::Ok({name} {{ {entries} }})"
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "core::result::Result::Ok({name}(serde::Deserialize::deserialize_value(v)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|k| format!("serde::Deserialize::deserialize_value(&items[{k}])?,"))
                .collect();
            format!(
                "let items = serde::seq_of_len(v, {n}, {name:?})?;\n\
                 core::result::Result::Ok({name}({entries}))"
            )
        }
        ItemKind::UnitStruct => format!("core::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &serde::Value) -> core::result::Result<Self, serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("{:?} => return core::result::Result::Ok({name}::{}),", v.name, v.name))
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| match &v.shape {
            VariantShape::Unit => None,
            VariantShape::Tuple(1) => Some(format!(
                "{:?} => core::result::Result::Ok({name}::{}(serde::Deserialize::deserialize_value(inner)?)),",
                v.name, v.name
            )),
            VariantShape::Tuple(n) => {
                let entries: String = (0..*n)
                    .map(|k| format!("serde::Deserialize::deserialize_value(&items[{k}])?,"))
                    .collect();
                Some(format!(
                    "{:?} => {{ let items = serde::seq_of_len(inner, {n}, {name:?})?; \
                     core::result::Result::Ok({name}::{}({entries})) }},",
                    v.name, v.name
                ))
            }
            VariantShape::Named(fields) => {
                let entries: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: serde::Deserialize::deserialize_value(serde::map_field(map, {f:?}, {name:?})?)?,"
                        )
                    })
                    .collect();
                Some(format!(
                    "{:?} => {{ let map = inner.as_map().ok_or_else(|| \
                     serde::Error::expected(\"map\", {name:?}))?; \
                     core::result::Result::Ok({name}::{} {{ {entries} }}) }},",
                    v.name, v.name
                ))
            }
        })
        .collect();
    format!(
        "if let core::option::Option::Some(s) = v.as_str() {{\n\
             match s {{ {unit_arms} _ => return core::result::Result::Err(\
                 serde::Error::unknown_variant(s, {name:?})) }}\n\
         }}\n\
         let (key, inner) = v.as_enum_map().ok_or_else(|| \
             serde::Error::expected(\"enum map\", {name:?}))?;\n\
         match key {{ {data_arms} _ => core::result::Result::Err(\
             serde::Error::unknown_variant(key, {name:?})) }}"
    )
}
