//! Vendored minimal stand-in for `serde`, used because this workspace
//! builds fully offline (no crates.io access).
//!
//! Instead of serde's visitor-based zero-copy architecture, this facade
//! uses one simplified self-describing data model, [`Value`]:
//!
//! - `Serialize` converts a value *to* a [`Value`] tree;
//! - `Deserialize` reconstructs a value *from* a [`Value`] tree.
//!
//! The derive macros (re-exported from the sibling vendored
//! `serde_derive`) generate those conversions for the struct/enum shapes
//! used in this workspace. `serde_json` (also vendored) prints and parses
//! [`Value`] as real JSON, so round-trips are exact — including `f64`
//! fields, which are formatted with shortest-round-trip precision.
//!
//! Supported API surface (intentionally small): the two traits, the
//! derive macros, and the helpers the generated code calls. Anything
//! else the real serde offers is out of scope; extend it here if a new
//! use appears.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// The simplified serde data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed (negative) integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets this value as an externally-tagged enum: a single-entry
    /// map `{ "Variant": payload }`.
    pub fn as_enum_map(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Map(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Error {
        Error::custom(format!("expected {what} while deserializing {ty}"))
    }

    /// An unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Error {
        Error::custom(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Looks up a struct field in a map value (helper for generated code).
pub fn map_field<'v>(
    map: &'v [(String, Value)],
    field: &str,
    ty: &str,
) -> Result<&'v Value, Error> {
    map.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{field}` for {ty}")))
}

/// Checks that `v` is a sequence of exactly `len` elements (helper for
/// generated tuple-shape code).
pub fn seq_of_len<'v>(v: &'v Value, len: usize, ty: &str) -> Result<&'v [Value], Error> {
    let items = v
        .as_seq()
        .ok_or_else(|| Error::expected("sequence", ty))?;
    if items.len() != len {
        return Err(Error::custom(format!(
            "expected {len} elements for {ty}, got {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Converts a value into the [`Value`] data model.
pub trait Serialize {
    /// Builds the [`Value`] tree representing `self`.
    fn serialize_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `v` back into `Self`.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    _ => return Err(Error::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range for i64")))?,
                    _ => return Err(Error::expected("integer", stringify!($t))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.serialize_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items = seq_of_len(v, N, "array")?;
        let parsed: Vec<T> = items.iter().map(T::deserialize_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::expected("fixed-length array", "array"))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "VecDeque"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let items = seq_of_len(v, $len, "tuple")?;
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1; A.0);
impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::deserialize_value(&42u64.serialize_value()).unwrap(), 42);
        assert_eq!(
            f64::deserialize_value(&0.1f64.serialize_value()).unwrap(),
            0.1
        );
        assert_eq!(
            i32::deserialize_value(&(-7i32).serialize_value()).unwrap(),
            -7
        );
        assert!(bool::deserialize_value(&true.serialize_value()).unwrap());
    }

    #[test]
    fn container_round_trips() {
        let v: Vec<(u64, f64)> = vec![(1, 0.5), (2, 1.5)];
        let round: Vec<(u64, f64)> = Vec::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(round, v);
        let o: Option<String> = Some("hi".to_string());
        assert_eq!(
            Option::<String>::deserialize_value(&o.serialize_value()).unwrap(),
            o
        );
        assert_eq!(
            Option::<String>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn errors_name_the_problem() {
        let err = u32::deserialize_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("u32"), "{err}");
        let err = map_field(&[], "rate", "Config").unwrap_err();
        assert!(err.to_string().contains("rate"), "{err}");
    }
}
