//! Vendored minimal stand-in for `criterion`, used because this workspace
//! builds fully offline (no crates.io access).
//!
//! Implements just enough of the criterion API for the benches under
//! `crates/bench/benches/`: `criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter` / `iter_batched`, and element/byte
//! throughput reporting. Statistics are deliberately simple — a warmup
//! phase sizes the measurement loop, one timed run reports mean
//! time/iteration — with no outlier analysis, no HTML reports, and no
//! saved baselines (`target/criterion/` is never written).

use std::time::{Duration, Instant};

/// How `Bencher::iter_batched` should batch inputs. All variants behave
/// identically here (one setup per measured invocation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing driver passed to each benchmark closure.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: estimate cost to size the measured loop.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iters < 1_000_000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let target = Duration::from_millis(100).as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, 5_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
        self.iters_hint = iters;
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warmup one invocation to estimate cost.
        let input = setup();
        let probe = Instant::now();
        std::hint::black_box(routine(input));
        let per_iter = probe.elapsed();
        let target = Duration::from_millis(100);
        let iters = if per_iter.is_zero() {
            1_000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };

        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.measured = Some((total, iters));
        self.iters_hint = iters;
    }
}

/// One named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; sampling is automatic here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), None, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters_hint: 0,
        measured: None,
    };
    f(&mut b);
    match b.measured {
        Some((elapsed, iters)) if iters > 0 => {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            let thrpt = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:.3} Melem/s", n as f64 / ns_per_iter * 1e3)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {:.3} MiB/s", n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!(
                "{name:<50} time: {} ({iters} iters){thrpt}",
                format_ns(ns_per_iter)
            );
        }
        _ => println!("{name:<50} (no measurement)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else {
        format!("{:.3} ms/iter", ns / 1_000_000.0)
    }
}

/// Declares a group of benchmark functions, like real criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports_measurement() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
    }

    #[test]
    fn iter_batched_reports_measurement() {
        let mut c = Criterion::default();
        c.bench_function("sum_vec", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
