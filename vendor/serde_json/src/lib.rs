//! Vendored minimal `serde_json`: prints and parses the in-tree serde
//! facade's [`Value`] data model as real JSON.
//!
//! Exists because this workspace builds fully offline. Guarantees that
//! matter to the workspace:
//!
//! - **Exact `f64` round-trips.** Floats are printed with Rust's
//!   shortest-round-trip formatting (`{:?}`) and parsed with
//!   `str::parse::<f64>`, both correctly rounded, so
//!   `from_str(&to_string(x)) == x` bit-for-bit for finite values.
//! - **Field order preservation.** Maps keep insertion order.
//!
//! Non-finite floats are a serialization error, as in real JSON.

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

pub use serde::Error;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value())?;
    Ok(out)
}

/// Serializes `value` as JSON into an [`std::io::Write`].
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::custom(format!("io error: {e}")))
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::deserialize_value(&v)
}

/// Parses a value from an [`std::io::Read`].
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader
        .read_to_string(&mut s)
        .map_err(|e| Error::custom(format!("io error: {e}")))?;
    from_str(&s)
}

// --- printing --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::custom("non-finite float is not valid JSON"));
            }
            // Rust's Debug for f64 is the shortest string that round-trips.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                // Fall back for integers beyond u64 range.
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| Error::custom(format!("bad number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Map(vec![
            ("rate".to_string(), Value::F64(0.1)),
            ("n".to_string(), Value::U64(42)),
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v).unwrap();
        let back: Value = {
            let mut p = Parser {
                bytes: s.as_bytes(),
                pos: 0,
            };
            p.parse_value().unwrap()
        };
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 6.25e9, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("0.1trailing").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
