//! Vendored minimal stand-in for `proptest`, used because this workspace
//! builds fully offline (no crates.io access).
//!
//! Supports the subset the Lumen workspace uses:
//!
//! - the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! - numeric [`std::ops::Range`] strategies (`0u64..1000`,
//!   `-1e6f64..1e6`, ...),
//! - [`collection::vec`] for vectors with a size range,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **Deterministic inputs.** Cases are generated from a seed derived
//!   from the test's module path and name, so every run sees the same
//!   inputs (no `PROPTEST_*` env vars, no regression files — any
//!   `*.proptest-regressions` files in the tree are ignored).
//! - **No shrinking.** A failing case reports the assertion message from
//!   `prop_assert*`; include the relevant inputs in the message.
//! - Default case count is 64 (real proptest: 256).

use std::ops::Range;

/// Per-test configuration: how many cases to run.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An rng for one test case, derived from the test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a condition inside a property test (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block runs
/// once per generated case with deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { <$crate::ProptestConfig as ::core::default::Default>::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    u64::from(__case),
                );
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                $body
            }
        }
    )*};
}

/// The imports property tests conventionally glob in.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        let a: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| TestRng::for_case("t", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], TestRng::for_case("other", 0).next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_with_config_compiles(x in 0u32..10, xs in collection::vec(0u8..4, 1..6)) {
            prop_assert!(x < 10);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert_eq!(xs.len(), xs.iter().count());
        }
    }

    proptest! {
        #[test]
        fn macro_without_config_compiles(x in -1.5f64..1.5) {
            prop_assert_ne!(x, 2.0);
            prop_assert!(x >= -1.5 && x < 1.5);
        }
    }
}
